"""Tests for per-unit checkpointing and resume (`UnitCheckpoint`).

Contract: a checkpointed `SimulationResult` round-trips bit-exactly
through JSON (shortest-repr floats), damaged entries read as misses,
and a resumed `execute_units` recomputes *only* the units missing from
the checkpoint directory.
"""

import functools

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.experiments.store import (
    UNIT_PAYLOAD_SCHEMA,
    UnitCheckpoint,
    result_from_payload,
    result_to_payload,
)
from repro.obs import metrics as obs_metrics
from repro.sim.metrics import SimulationResult
from repro.sim.parallel import build_units, checkpoint_key, execute_units
from repro.sim.resilient import RetryPolicy

pytestmark = pytest.mark.chaos


def _result(**overrides):
    base = dict(
        algorithm="rle",
        n_scheduled=7,
        n_trials=40,
        mean_failed=1.0 / 3.0,
        failed_stderr=0.07071067811865475,
        mean_throughput=6.333333333333333,
        throughput_stderr=0.1,
        scheduled_rate=7.0,
        per_link_success=np.array([0.1, 0.2, 1.0 / 3.0]),
        active_indices=np.array([0, 3, 5], dtype=np.int64),
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestPayloadRoundTrip:
    def test_bit_exact_floats(self):
        r = _result()
        back = result_from_payload(result_to_payload(r))
        assert back.mean_failed == r.mean_failed
        assert back.failed_stderr == r.failed_stderr
        assert back.mean_throughput == r.mean_throughput
        assert np.array_equal(back.per_link_success, r.per_link_success)
        assert np.array_equal(back.active_indices, r.active_indices)
        assert back.algorithm == r.algorithm
        assert back.n_scheduled == r.n_scheduled and back.n_trials == r.n_trials

    def test_json_serialisable_and_versioned(self):
        import json

        payload = result_to_payload(_result())
        assert payload["schema"] == UNIT_PAYLOAD_SCHEMA
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_schema_rejected(self):
        payload = result_to_payload(_result())
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            result_from_payload(payload)

    def test_missing_fields_rejected(self):
        payload = result_to_payload(_result())
        del payload["mean_failed"]
        with pytest.raises(ValueError, match="missing fields"):
            result_from_payload(payload)


class TestUnitCheckpoint:
    def test_put_get_round_trip(self, tmp_path):
        ck = UnitCheckpoint(tmp_path)
        r = _result()
        ck.put("abc", r)
        back = ck.get("abc")
        assert back is not None
        assert back.mean_failed == r.mean_failed
        assert np.array_equal(back.per_link_success, r.per_link_success)
        assert len(ck) == 1 and ck.keys() == ["abc"]

    def test_miss_returns_none(self, tmp_path):
        assert UnitCheckpoint(tmp_path).get("nope") is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        ck = UnitCheckpoint(tmp_path)
        ck.put("abc", _result())
        path = ck.store.path_for("abc")
        path.write_text(path.read_text()[:30])  # torn write
        assert ck.get("abc") is None

    def test_wrong_shape_entry_is_miss(self, tmp_path):
        ck = UnitCheckpoint(tmp_path)
        ck.store.put("abc", {"schema": UNIT_PAYLOAD_SCHEMA, "algorithm": "x"})
        assert ck.get("abc") is None


WORKLOAD = TopologyWorkload(n_links=20)
SCHEDULERS = {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")}


def _units():
    return build_units(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=2,
        n_trials=30,
        alpha=3.0,
        gamma_th=1.0,
        eps=0.01,
        root_seed=5,
    )


class TestCheckpointKey:
    def test_stable_across_calls(self):
        a, b = _units(), _units()
        assert [checkpoint_key(u) for u in a] == [checkpoint_key(u) for u in b]

    def test_distinct_per_unit(self):
        ks = [checkpoint_key(u) for u in _units()]
        assert len(set(ks)) == len(ks)

    def test_parameters_change_the_key(self):
        from dataclasses import replace

        u = _units()[0]
        assert checkpoint_key(replace(u, n_trials=31)) != checkpoint_key(u)
        assert checkpoint_key(replace(u, root_seed=6)) != checkpoint_key(u)
        assert checkpoint_key(replace(u, alpha=3.5)) != checkpoint_key(u)

    def test_address_free_for_partials(self):
        # repr() of a function embeds its memory address; keys must not.
        from dataclasses import replace

        def remake(c2):
            sched = functools.partial(get_scheduler("rle"), c2=c2)
            return checkpoint_key(replace(_units()[0], scheduler=sched))

        assert remake(0.5) == remake(0.5)
        assert remake(0.5) != remake(0.25)


class TestResume:
    def test_interrupted_sweep_recomputes_only_missing_units(self, tmp_path):
        units = _units()
        clean = execute_units(units)

        ck = UnitCheckpoint(tmp_path)
        full = execute_units(units, checkpoint=ck)
        assert len(ck) == len(units)
        for a, b in zip(full, clean):
            assert a.mean_failed == b.mean_failed
            assert np.array_equal(a.per_link_success, b.per_link_success)

        # "interrupt": drop two units from the checkpoint, keep the rest
        keys = [checkpoint_key(u) for u in units]
        for key in (keys[1], keys[2]):
            ck.store.path_for(key).unlink()
        kept = set(keys) - {keys[1], keys[2]}
        kept_stats = {k: ck.store.path_for(k).stat().st_mtime_ns for k in kept}

        resumed = execute_units(units, checkpoint=ck)
        for a, b in zip(resumed, clean):
            assert a.mean_failed == b.mean_failed
            assert a.mean_throughput == b.mean_throughput
            assert np.array_equal(a.per_link_success, b.per_link_success)
            assert np.array_equal(a.active_indices, b.active_indices)
        # only the two missing units were recomputed: the kept entries'
        # files were never rewritten
        for k, mtime in kept_stats.items():
            assert ck.store.path_for(k).stat().st_mtime_ns == mtime
        assert len(ck) == len(units)

    def test_resume_counts_served_units(self, tmp_path, obs_enabled):
        units = _units()
        ck = UnitCheckpoint(tmp_path)
        execute_units(units, checkpoint=ck)
        obs_enabled.reset()
        execute_units(units, checkpoint=ck)
        snap = obs_metrics.snapshot()
        assert snap["counters"]["resilience.units_from_checkpoint"] == len(units)
        # nothing was recomputed, so no unit-level metrics were recorded
        assert "scheduler.links_admitted" not in snap["counters"]

    def test_checkpoint_composes_with_policy_and_jobs(self, tmp_path):
        units = _units()
        clean = execute_units(units)
        ck = UnitCheckpoint(tmp_path)
        policy = RetryPolicy(max_retries=1, backoff_base=0.0, poll_interval=0.02)
        got = execute_units(units, n_jobs=2, policy=policy, checkpoint=ck)
        for a, b in zip(got, clean):
            assert a.mean_failed == b.mean_failed
            assert np.array_equal(a.per_link_success, b.per_link_success)
        assert len(ck) == len(units)
