"""Span tracer: gating, nesting, draining, cross-process absorption."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import trace as obs_trace
from repro.obs.trace import SpanRecord, _NOOP, span


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_disabled_span_is_shared_noop(self):
        assert span("fmatrix.build") is _NOOP
        assert span("mc.replay", trials=5) is span("dls.contention")

    def test_disabled_span_records_nothing(self):
        with span("never.recorded"):
            pass
        assert obs.drain_spans() == []

    def test_noop_supports_set(self):
        with span("x.y") as s:
            s.set(k=1)  # must not raise


class TestNesting:
    def test_parent_child_links_and_depth(self, obs_enabled):
        with span("outer", n=2):
            with span("inner.first"):
                pass
            with span("inner.second"):
                pass
        records = obs.drain_spans()
        # children close before the parent
        assert [r.name for r in records] == ["inner.first", "inner.second", "outer"]
        by_name = {r.name: r for r in records}
        outer = by_name["outer"]
        assert outer.parent is None and outer.depth == 0
        for child in ("inner.first", "inner.second"):
            assert by_name[child].parent == outer.id
            assert by_name[child].depth == 1
        assert outer.attrs == {"n": 2}

    def test_ids_unique(self, obs_enabled):
        for _ in range(5):
            with span("a.b"):
                pass
        ids = [r.id for r in obs.drain_spans()]
        assert len(set(ids)) == 5

    def test_timings_nonnegative_and_ordered(self, obs_enabled):
        with span("outer"):
            with span("inner"):
                sum(range(1000))
        by_name = {r.name: r for r in obs.drain_spans()}
        assert by_name["inner"].wall >= 0.0
        assert by_name["outer"].wall >= by_name["inner"].wall
        assert by_name["outer"].cpu >= 0.0

    def test_set_updates_open_span_attrs(self, obs_enabled):
        with span("a.b", n=1) as s:
            s.set(extra="v")
        (rec,) = obs.drain_spans()
        assert rec.attrs == {"n": 1, "extra": "v"}

    def test_exception_still_records_span(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with span("a.b"):
                raise RuntimeError("boom")
        assert [r.name for r in obs.drain_spans()] == ["a.b"]

    def test_current_span_id(self, obs_enabled):
        assert obs_trace.current_span_id() is None
        with span("outer") as s:
            assert obs_trace.current_span_id() == s.id
        assert obs_trace.current_span_id() is None


class TestDrainPeekReset:
    def test_drain_clears(self, obs_enabled):
        with span("a.b"):
            pass
        assert len(obs.drain_spans()) == 1
        assert obs.drain_spans() == []

    def test_peek_preserves(self, obs_enabled):
        with span("a.b"):
            pass
        assert len(obs.peek_spans()) == 1
        assert len(obs.peek_spans()) == 1
        assert len(obs.drain_spans()) == 1

    def test_reset_restarts_ids(self, obs_enabled):
        with span("a.b"):
            pass
        obs.reset()
        with span("c.d"):
            pass
        (rec,) = obs.drain_spans()
        assert rec.id == 0


class TestAbsorbSpans:
    def _worker_records(self):
        """Spans as a worker process would produce them (ids from 0)."""
        return [
            SpanRecord(id=0, parent=None, name="parallel.unit", t0=0.0,
                       wall=2.0, cpu=1.9, depth=0),
            SpanRecord(id=1, parent=0, name="mc.replay", t0=0.5,
                       wall=1.0, cpu=1.0, depth=1),
        ]

    def test_absorb_rebases_and_reparents(self, obs_enabled):
        with span("parallel.map") as parent:
            obs.absorb_spans(self._worker_records(), proc=3)
        records = obs.drain_spans()
        by_name = {r.name: r for r in records}
        unit, replay = by_name["parallel.unit"], by_name["mc.replay"]
        # worker root hangs off the open parent span
        assert unit.parent == parent.id
        # internal link preserved under the id shift
        assert replay.parent == unit.id
        assert unit.depth == 1 and replay.depth == 2
        assert unit.proc == 3 and replay.proc == 3
        # ids distinct from the parent's
        assert len({r.id for r in records}) == 3

    def test_absorbed_ids_do_not_collide_with_later_spans(self, obs_enabled):
        obs.absorb_spans(self._worker_records(), proc=0)
        with span("later"):
            pass
        ids = [r.id for r in obs.drain_spans()]
        assert len(set(ids)) == len(ids)

    def test_absorb_noop_when_disabled(self):
        obs.absorb_spans(self._worker_records(), proc=0)
        assert obs.drain_spans() == []

    def test_absorb_empty_is_noop(self, obs_enabled):
        obs.absorb_spans([], proc=0)
        assert obs.drain_spans() == []
