"""Tests for the fault activation/injection machinery (`repro.faults.inject`).

The contract under test: plans arm via an environment variable (so
worker processes inherit them), `maybe_inject` fires exactly the fault
armed for `(key, attempt)`, and process-killing faults downgrade to
exceptions inside the activating process.
"""

import os

import pytest

from repro.faults import (
    ENV_PARENT,
    ENV_PLAN,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    PoisonResult,
    activate,
    active_plan,
    deactivate,
    injected,
    maybe_inject,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _clean_env():
    deactivate()
    yield
    deactivate()


PLAN = FaultPlan({"u/crash": FaultSpec("crash"), "u/poison": FaultSpec("poison")})


class TestActivation:
    def test_activate_sets_env_and_parent_pid(self):
        activate(PLAN)
        assert os.environ[ENV_PLAN] == PLAN.to_json()
        assert os.environ[ENV_PARENT] == str(os.getpid())

    def test_deactivate_clears_env(self):
        activate(PLAN)
        deactivate()
        assert ENV_PLAN not in os.environ
        assert ENV_PARENT not in os.environ
        deactivate()  # idempotent

    def test_active_plan_none_when_disarmed(self):
        assert active_plan() is None

    def test_active_plan_parses_armed_plan(self):
        activate(PLAN)
        assert active_plan() == PLAN

    def test_active_plan_tracks_env_changes(self):
        activate(PLAN)
        assert active_plan() == PLAN
        other = FaultPlan({"x": FaultSpec("oom")})
        activate(other)
        assert active_plan() == other

    def test_injected_context_restores_previous_state(self):
        outer = FaultPlan({"outer": FaultSpec("crash")})
        with injected(outer):
            with injected(PLAN):
                assert active_plan() == PLAN
            assert active_plan() == outer
        assert active_plan() is None

    def test_injected_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with injected(PLAN):
                raise RuntimeError("boom")
        assert active_plan() is None


class TestMaybeInject:
    def test_noop_without_plan(self):
        assert maybe_inject("u/crash", 0) is None

    def test_noop_for_unlisted_key(self):
        with injected(PLAN):
            assert maybe_inject("someone/else", 0) is None

    def test_crash_raises_injected_fault(self):
        with injected(PLAN):
            with pytest.raises(InjectedFault, match="crash fault for unit 'u/crash'"):
                maybe_inject("u/crash", 0)

    def test_fault_carries_key_and_kind(self):
        with injected(PLAN):
            with pytest.raises(InjectedFault) as err:
                maybe_inject("u/crash", 0)
        assert err.value.key == "u/crash"
        assert err.value.kind == "crash"

    def test_poison_returns_poison_result(self):
        with injected(PLAN):
            value = maybe_inject("u/poison", 0)
        assert isinstance(value, PoisonResult)
        assert value.key == "u/poison" and value.attempt == 0

    def test_oom_raises_memory_error(self):
        with injected(FaultPlan({"u": FaultSpec("oom")})):
            with pytest.raises(MemoryError, match="injected memory blowout"):
                maybe_inject("u", 0)

    def test_hang_sleeps_then_raises(self):
        import time

        with injected(FaultPlan({"u": FaultSpec("hang", seconds=0.05)})):
            t0 = time.monotonic()
            with pytest.raises(InjectedFault, match="hang"):
                maybe_inject("u", 0)
            assert time.monotonic() - t0 >= 0.05

    def test_die_downgrades_to_crash_in_activating_process(self):
        # A real `die` would os._exit this very process; the downgrade is
        # what makes serial chaos tests (and the parent's serial fallback)
        # survivable.
        with injected(FaultPlan({"u": FaultSpec("die")})):
            with pytest.raises(InjectedFault, match="die"):
                maybe_inject("u", 0)

    def test_attempt_window_gates_injection(self):
        with injected(FaultPlan({"u": FaultSpec("crash", attempts=2)})):
            with pytest.raises(InjectedFault):
                maybe_inject("u", 0)
            with pytest.raises(InjectedFault):
                maybe_inject("u", 1)
            assert maybe_inject("u", 2) is None
