"""Property-based tests for the geometry substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.distance import cross_distances, pairwise_distances
from repro.geometry.grid import GridPartition, four_coloring, ring_cell_count, ring_cells
from repro.geometry.region import Region

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

points_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.just(2)),
    elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
)


class TestDistanceProperties:
    @COMMON
    @given(points_arrays)
    def test_pairwise_metric_axioms(self, pts):
        d = pairwise_distances(pts)
        assert (d >= 0).all()
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    @COMMON
    @given(points_arrays, points_arrays)
    def test_cross_transpose_symmetry(self, a, b):
        np.testing.assert_allclose(
            cross_distances(a, b), cross_distances(b, a).T, atol=1e-9
        )

    @COMMON
    @given(
        points_arrays,
        st.floats(-1e3, 1e3, allow_nan=False),
        st.floats(-1e3, 1e3, allow_nan=False),
    )
    def test_translation_invariance(self, pts, dx, dy):
        shifted = pts + np.array([dx, dy])
        np.testing.assert_allclose(
            pairwise_distances(pts), pairwise_distances(shifted), atol=1e-6
        )


class TestGridProperties:
    @COMMON
    @given(points_arrays, st.floats(0.1, 1e3))
    def test_cells_contain_their_points(self, pts, cell_size):
        grid = GridPartition(cell_size)
        cells = grid.cell_of(pts)
        lows = cells * cell_size
        # floor semantics: low <= point < low + cell (with float slop).
        assert (pts >= lows - 1e-6 * cell_size).all()
        assert (pts < lows + cell_size * (1 + 1e-9) + 1e-6).all()

    @COMMON
    @given(
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.integers(-50, 50),
    )
    def test_color_rule(self, a1, b1, a2, b2):
        """Same colour iff both index offsets are even."""
        c1 = four_coloring(np.array([[a1, b1]]))[0]
        c2 = four_coloring(np.array([[a2, b2]]))[0]
        same = (a1 - a2) % 2 == 0 and (b1 - b2) % 2 == 0
        assert (c1 == c2) == same

    @COMMON
    @given(st.integers(0, 30), st.integers(-20, 20), st.integers(-20, 20))
    def test_ring_counts_and_distance(self, q, ca, cb):
        cells = list(ring_cells((ca, cb), q))
        assert len(cells) == ring_cell_count(q)
        for a, b in cells:
            assert max(abs(a - ca), abs(b - cb)) == q


class TestRegionProperties:
    @COMMON
    @given(st.floats(1.0, 1e4), st.integers(0, 200), st.integers(0, 2**31))
    def test_samples_always_inside(self, side, n, seed):
        region = Region.square(side)
        pts = region.sample_uniform(n, seed=seed)
        assert region.contains(pts).all()

    @COMMON
    @given(points_arrays, st.floats(1.0, 1e3))
    def test_clamp_idempotent_and_inside(self, pts, side):
        region = Region.square(side)
        clamped = region.clamp(pts)
        assert region.contains(clamped).all()
        np.testing.assert_array_equal(region.clamp(clamped), clamped)
