"""Tests for the reporting formatters."""

import pytest

from repro.experiments.reporting import format_run_summary, format_table


class TestFormatTable:
    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        lines = out.splitlines()
        assert len(lines) == 2  # header + rule only

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23456" not in out

    def test_mixed_types(self):
        out = format_table(["name", "n", "v"], [["rle", 10, 1.5]])
        assert "rle" in out and "10" in out and "1.500" in out

    def test_right_alignment(self):
        out = format_table(["col"], [[1], [100]])
        lines = out.splitlines()
        # Shorter values are right-padded to the same width.
        assert lines[2].endswith("1") and lines[3].endswith("100")
        assert len(lines[2]) == len(lines[3])


class TestFormatRunSummary:
    def test_renders_run_results(self):
        from repro.core.base import get_scheduler
        from repro.network.topology import paper_topology
        from repro.sim.runner import run_schedulers

        out_map = run_schedulers(
            {"rle": get_scheduler("rle")},
            lambda seed: paper_topology(30, seed=seed),
            n_repetitions=1,
            n_trials=20,
        )
        text = format_run_summary(out_map)
        assert "rle" in text
        assert "throughput" in text
        assert len(text.splitlines()) == 3  # header + rule + one row


class TestSweepSeriesMetric:
    def test_unknown_algorithm_raises(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig6 import throughput_vs_links

        cfg = ExperimentConfig(n_links_sweep=(20,), n_repetitions=1, n_trials=20)
        sweep = throughput_vs_links(cfg)
        with pytest.raises(KeyError):
            sweep.metric("nope", "mean_failed")

    def test_unknown_field_raises(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig6 import throughput_vs_links

        cfg = ExperimentConfig(n_links_sweep=(20,), n_repetitions=1, n_trials=20)
        sweep = throughput_vs_links(cfg)
        with pytest.raises(AttributeError):
            sweep.metric("rle", "not_a_field")
