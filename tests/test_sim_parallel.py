"""Tests for the process-parallel experiment engine.

The headline guarantee: ``n_jobs`` changes wall-clock behaviour only —
every result is bit-identical to the serial path because seeds derive
from work-unit identity, never from execution order.
"""

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.sim.parallel import (
    available_cpus,
    build_units,
    execute_unit,
    execute_units,
    parallel_map,
    resolve_n_jobs,
)
from repro.sim.runner import SweepPoint, run_schedulers, run_sweep


def _square(x):
    return x * x


WORKLOAD = TopologyWorkload(n_links=25)
SCHEDULERS = {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")}


def _run(n_jobs):
    return run_schedulers(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=3,
        n_trials=40,
        root_seed=11,
        n_jobs=n_jobs,
    )


class TestResolveNJobs:
    def test_one_is_serial(self):
        assert resolve_n_jobs(1) == 1

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_n_jobs(0) == available_cpus()
        assert resolve_n_jobs(None) == available_cpus()

    def test_oversubscription_allowed(self):
        assert resolve_n_jobs(64) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(-1)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], n_jobs=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, list(range(10)), n_jobs=3) == [
            i * i for i in range(10)
        ]

    def test_single_item_stays_in_process(self):
        # A lambda would break pickling — a single item must not need it.
        assert parallel_map(lambda x: x + 1, [41], n_jobs=4) == [42]

    def test_unpicklable_items_raise_clear_error(self):
        with pytest.raises(ValueError, match="picklable"):
            parallel_map(_square, [lambda: 1, lambda: 2], n_jobs=2)

    def test_unpicklable_func_raises_clear_error(self):
        with pytest.raises(ValueError, match="picklable"):
            parallel_map(lambda x: x, [1, 2], n_jobs=2)


class TestRunSchedulersParallel:
    def test_parallel_equals_serial_exactly(self):
        """The acceptance criterion: n_jobs=4 == n_jobs=1, bit for bit."""
        serial = _run(1)
        parallel = _run(4)
        assert set(serial) == set(parallel)
        for name in serial:
            s, p = serial[name], parallel[name]
            assert s.mean_failed == p.mean_failed
            assert s.mean_throughput == p.mean_throughput
            assert s.failed_std == p.failed_std
            assert s.throughput_std == p.throughput_std
            assert s.mean_scheduled == p.mean_scheduled
            for rs, rp in zip(s.per_rep, p.per_rep):
                np.testing.assert_array_equal(rs.per_link_success, rp.per_link_success)
                np.testing.assert_array_equal(rs.active_indices, rp.active_indices)

    def test_all_cpus_equals_serial(self):
        serial = _run(1)
        auto = _run(0)
        for name in serial:
            assert serial[name].mean_failed == auto[name].mean_failed

    def test_closure_workload_fails_fast_in_parallel(self):
        def closure_workload(seed):
            from repro.network.topology import paper_topology

            return paper_topology(10, seed=seed)

        with pytest.raises(ValueError, match="picklable"):
            run_schedulers(
                SCHEDULERS, closure_workload, n_repetitions=2, n_trials=5, n_jobs=2
            )

    def test_closure_workload_fine_serially(self):
        def closure_workload(seed):
            from repro.network.topology import paper_topology

            return paper_topology(10, seed=seed)

        out = run_schedulers(
            SCHEDULERS, closure_workload, n_repetitions=2, n_trials=5, n_jobs=1
        )
        assert set(out) == set(SCHEDULERS)


class TestWorkUnits:
    def test_grid_order_is_rep_major(self):
        units = build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=2,
            n_trials=10,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=0,
        )
        assert [(u.rep, u.name) for u in units] == [
            (0, "rle"),
            (0, "ldp"),
            (1, "rle"),
            (1, "ldp"),
        ]

    def test_unit_execution_matches_inline(self):
        units = build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=1,
            n_trials=30,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=5,
        )
        inline = [execute_unit(u) for u in units]
        pooled = execute_units(units, n_jobs=2)
        for a, b in zip(inline, pooled):
            assert a.mean_failed == b.mean_failed
            np.testing.assert_array_equal(a.per_link_success, b.per_link_success)

    def test_scheduler_kwargs_forwarded(self):
        from repro.core.rle import rle_schedule

        out = run_schedulers(
            {"rle": rle_schedule},
            WORKLOAD,
            n_repetitions=1,
            n_trials=10,
            scheduler_kwargs={"rle": {"c2": 0.3}},
            n_jobs=2,
        )
        assert out["rle"].n_repetitions == 1


class TestRunSweep:
    def test_equals_per_point_run_schedulers(self):
        points = [
            SweepPoint(x=float(n), workload=TopologyWorkload(n_links=n), alpha=3.0, root_seed=n)
            for n in (15, 25)
        ]
        swept = run_sweep(SCHEDULERS, points, n_repetitions=2, n_trials=20, n_jobs=1)
        for point, results in zip(points, swept):
            direct = run_schedulers(
                SCHEDULERS,
                point.workload,
                n_repetitions=2,
                n_trials=20,
                alpha=point.alpha,
                root_seed=point.root_seed,
            )
            for name in SCHEDULERS:
                assert results[name].mean_failed == direct[name].mean_failed
                assert results[name].mean_throughput == direct[name].mean_throughput

    def test_parallel_sweep_equals_serial(self):
        points = [
            SweepPoint(x=float(n), workload=TopologyWorkload(n_links=n), alpha=3.0, root_seed=n)
            for n in (15, 25)
        ]
        serial = run_sweep(SCHEDULERS, points, n_repetitions=2, n_trials=20, n_jobs=1)
        pooled = run_sweep(SCHEDULERS, points, n_repetitions=2, n_trials=20, n_jobs=3)
        for s, p in zip(serial, pooled):
            for name in SCHEDULERS:
                assert s[name].mean_failed == p[name].mean_failed
                assert s[name].mean_throughput == p[name].mean_throughput
