"""Tests for the protocol (graph-based) model baseline."""

import numpy as np
import pytest

from repro.core.baselines.protocol import (
    conflict_matrix,
    protocol_model_schedule,
    protocol_model_schedule_mis,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import chain_topology, paper_topology


class TestConflictMatrix:
    def test_symmetric_no_diagonal(self, paper_problem):
        c = conflict_matrix(paper_problem)
        assert (c == c.T).all()
        assert not np.diag(c).any()

    def test_close_links_conflict(self):
        links = chain_topology(2, hop=15.0, link_length=10.0)
        p = FadingRLS(links=links)
        c = conflict_matrix(p, range_factor=2.0)
        assert c[0, 1]

    def test_far_links_do_not_conflict(self):
        links = chain_topology(2, hop=500.0, link_length=10.0)
        p = FadingRLS(links=links)
        assert not conflict_matrix(p, range_factor=2.0)[0, 1]

    def test_larger_range_more_conflicts(self, paper_problem):
        small = conflict_matrix(paper_problem, range_factor=1.5).sum()
        large = conflict_matrix(paper_problem, range_factor=4.0).sum()
        assert large >= small

    def test_domain(self, paper_problem):
        with pytest.raises(ValueError):
            conflict_matrix(paper_problem, range_factor=0.0)


class TestProtocolSchedule:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert protocol_model_schedule(p).size == 0

    def test_independent_in_conflict_graph(self, paper_problem):
        s = protocol_model_schedule(paper_problem)
        c = conflict_matrix(paper_problem)
        sub = c[np.ix_(s.active, s.active)]
        assert not sub.any()

    def test_maximal(self, paper_problem):
        s = protocol_model_schedule(paper_problem)
        c = conflict_matrix(paper_problem)
        mask = s.mask(paper_problem.n_links)
        for i in np.flatnonzero(~mask):
            # Every unscheduled link conflicts with something scheduled.
            assert c[i, mask].any()

    def test_deterministic(self, paper_problem):
        a = protocol_model_schedule(paper_problem)
        b = protocol_model_schedule(paper_problem)
        np.testing.assert_array_equal(a.active, b.active)

    def test_schedules_densely(self):
        """The graph abstraction schedules far more links than the
        fading-aware algorithms — the Gronkvist inefficiency."""
        from repro.core.rle import rle_schedule

        p = FadingRLS(links=paper_topology(300, seed=0))
        assert protocol_model_schedule(p).size > 3 * rle_schedule(p).size

    def test_fading_infeasible_on_dense_instances(self):
        violations = 0
        for seed in range(5):
            p = FadingRLS(links=paper_topology(300, seed=seed))
            if not p.is_feasible(protocol_model_schedule(p).active):
                violations += 1
        assert violations >= 4

    def test_accumulation_blindness(self):
        """Many pairwise-non-conflicting links still sum to failure:
        a ring of senders, each outside every receiver's protection
        disk, jointly overload the centre receivers."""
        # Concentric rings: every cross sender-receiver distance is
        # ~50 (outside the 2 x 15 = 30 protection disks) yet the summed
        # interference factors blow the gamma_eps budget.
        n = 12
        angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
        senders = 100.0 * np.column_stack([np.cos(angles), np.sin(angles)])
        receivers = 85.0 * np.column_stack([np.cos(angles), np.sin(angles)])
        links = LinkSet(senders=senders, receivers=receivers)  # length 15
        p = FadingRLS(links=links)
        s = protocol_model_schedule(p, range_factor=2.0)
        assert s.size == n  # graph model sees no conflicts at all
        assert not p.is_feasible(s.active)  # accumulation says otherwise


class TestProtocolMis:
    def test_independent(self, paper_problem):
        s = protocol_model_schedule_mis(paper_problem, seed=0)
        c = conflict_matrix(paper_problem)
        assert not c[np.ix_(s.active, s.active)].any()

    def test_seeded_reproducible(self, paper_problem):
        a = protocol_model_schedule_mis(paper_problem, seed=5)
        b = protocol_model_schedule_mis(paper_problem, seed=5)
        np.testing.assert_array_equal(a.active, b.active)

    def test_registered(self):
        from repro.core.base import list_schedulers

        assert "protocol" in list_schedulers()
        assert "protocol_mis" in list_schedulers()
