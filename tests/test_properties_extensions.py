"""Property-based tests for the noise / power model extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.problem import FadingRLS
from tests.test_properties import link_sets

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPowerInvariance:
    @COMMON
    @given(link_sets(), st.floats(0.1, 100.0))
    def test_uniform_power_scaling_is_noop_without_noise(self, links, scale):
        """With N0 = 0 only power *ratios* matter: scaling all powers
        leaves the interference matrix and feasibility untouched."""
        base = FadingRLS(links=links)
        scaled = FadingRLS(links=links, power=scale)
        np.testing.assert_allclose(
            base.interference_matrix(), scaled.interference_matrix(), rtol=1e-12
        )
        active = np.arange(len(links))
        assert base.is_feasible(active) == scaled.is_feasible(active)

    @COMMON
    @given(link_sets(), st.floats(1.5, 50.0))
    def test_power_scaling_helps_under_noise(self, links, scale):
        """With noise, more power strictly shrinks every noise factor."""
        noisy = FadingRLS(links=links, noise=1e-5)
        louder = FadingRLS(links=links, noise=1e-5, power=scale)
        assert (louder.noise_factors() < noisy.noise_factors()).all()
        # Success probabilities improve (interference part unchanged).
        active = np.arange(len(links))
        assert (
            louder.success_probabilities(active) >= noisy.success_probabilities(active) - 1e-12
        ).all()

    @COMMON
    @given(link_sets(), st.integers(0, 2**31))
    def test_per_link_powers_change_factors_consistently(self, links, seed):
        """F[i, j] scales as log1p(P_i/P_j * base) — spot-check against
        a direct recomputation."""
        rng = np.random.default_rng(seed)
        powers = rng.uniform(0.5, 5.0, size=len(links))
        p = FadingRLS(links=links, powers=powers)
        f = p.interference_matrix()
        d = p.distances()
        n = len(links)
        i, j = rng.integers(0, n), rng.integers(0, n)
        if i == j:
            assert f[i, j] == 0.0
        else:
            expected = np.log1p(
                p.gamma_th
                * (powers[i] * d[i, j] ** -p.alpha)
                / (powers[j] * d[j, j] ** -p.alpha)
            )
            assert f[i, j] == pytest.approx(expected, rel=1e-10)


class TestNoiseMonotonicity:
    @COMMON
    @given(link_sets(), st.floats(1e-9, 1e-3), st.floats(1.5, 10.0))
    def test_more_noise_never_helps(self, links, noise, factor):
        quiet = FadingRLS(links=links, noise=noise)
        loud = FadingRLS(links=links, noise=noise * factor)
        active = np.arange(len(links))
        # Feasible under loud noise -> feasible under quiet noise.
        if loud.is_feasible(active):
            assert quiet.is_feasible(active)
        assert (
            loud.success_probabilities(active) <= quiet.success_probabilities(active) + 1e-12
        ).all()

    @COMMON
    @given(link_sets(), st.floats(1e-9, 1e-2))
    def test_serviceability_matches_noise_factor(self, links, noise):
        p = FadingRLS(links=links, noise=noise)
        np.testing.assert_array_equal(
            p.serviceable(), p.noise_factors() <= p.gamma_eps
        )

    @COMMON
    @given(link_sets(), st.floats(1e-8, 1e-3), st.integers(0, 2**31))
    def test_schedulers_feasible_under_noise(self, links, noise, seed):
        from repro.core.ldp import ldp_schedule
        from repro.core.rle import rle_schedule

        p = FadingRLS(links=links, noise=noise)
        assume(p.serviceable().any())
        for fn in (ldp_schedule, rle_schedule):
            s = fn(p)
            assert p.is_feasible(s.active)


class TestBudgetDecomposition:
    @COMMON
    @given(link_sets(), st.floats(1e-9, 1e-4))
    def test_success_prob_decomposes(self, links, noise):
        """log Pr = -(interference + noise factor), exactly."""
        p = FadingRLS(links=links, noise=noise)
        active = np.arange(len(links))
        probs = p.success_probabilities(active)
        expected = np.exp(-(p.interference_on(active) + p.noise_factors()))
        np.testing.assert_allclose(probs, expected, rtol=1e-12)

    @COMMON
    @given(link_sets())
    def test_certificate_agrees_with_feasibility(self, links):
        from repro.core.certify import certify

        p = FadingRLS(links=links)
        active = np.arange(len(links))
        cert = certify(p, active)
        assert cert.feasible == p.is_feasible(active)
