"""Tests for repro.sim.metrics."""

import numpy as np
import pytest

from repro.sim.metrics import summarize_trials


def make_success(pattern):
    return np.asarray(pattern, dtype=bool)


class TestSummarizeTrials:
    def test_all_success(self):
        s = make_success([[1, 1], [1, 1], [1, 1]])
        r = summarize_trials(s, np.array([1.0, 2.0]), active_indices=np.array([0, 1]))
        assert r.mean_failed == 0.0
        assert r.mean_throughput == 3.0
        assert r.scheduled_rate == 3.0
        np.testing.assert_array_equal(r.per_link_success, [1.0, 1.0])

    def test_all_fail(self):
        s = make_success([[0, 0], [0, 0]])
        r = summarize_trials(s, np.array([1.0, 1.0]), active_indices=np.array([0, 1]))
        assert r.mean_failed == 2.0
        assert r.mean_throughput == 0.0
        assert r.failure_rate == 1.0

    def test_mixed(self):
        s = make_success([[1, 0], [0, 1]])
        r = summarize_trials(s, np.array([2.0, 3.0]), active_indices=np.array([0, 1]))
        assert r.mean_failed == 1.0
        assert r.mean_throughput == pytest.approx(2.5)
        np.testing.assert_allclose(r.per_link_success, [0.5, 0.5])

    def test_stderr_zero_single_trial(self):
        s = make_success([[1, 0]])
        r = summarize_trials(s, np.array([1.0, 1.0]), active_indices=np.array([0, 1]))
        assert r.failed_stderr == 0.0 and r.throughput_stderr == 0.0

    def test_stderr_positive_when_varying(self):
        s = make_success([[1, 1], [0, 0], [1, 0]])
        r = summarize_trials(s, np.array([1.0, 1.0]), active_indices=np.array([0, 1]))
        assert r.failed_stderr > 0

    def test_empty_schedule(self):
        s = np.zeros((5, 0), dtype=bool)
        r = summarize_trials(s, np.zeros(0), active_indices=np.zeros(0, dtype=int))
        assert r.mean_failed == 0.0 and r.n_scheduled == 0
        assert r.failure_rate == 0.0

    def test_zero_trials(self):
        s = np.zeros((0, 3), dtype=bool)
        r = summarize_trials(s, np.ones(3), active_indices=np.arange(3))
        assert r.n_trials == 0
        assert r.scheduled_rate == 3.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            summarize_trials(np.zeros(3, dtype=bool), np.ones(3), active_indices=np.arange(3))
        with pytest.raises(ValueError):
            summarize_trials(
                np.zeros((2, 3), dtype=bool), np.ones(2), active_indices=np.arange(3)
            )
