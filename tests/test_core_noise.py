"""Tests for the ambient-noise extension of the Rayleigh model.

The paper sets N0 = 0 (Eq. 8); the library generalises with the exact
closed form ``Pr = e^-nu_j * prod(...)``.  These tests pin the noise
factor algebra, the serviceability boundary, Monte-Carlo agreement,
and that every scheduler remains feasible under noise.
"""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


def noisy_problem(n=80, noise=1e-7, seed=0, **kw):
    return FadingRLS(links=paper_topology(n, seed=seed), noise=noise, **kw)


class TestNoiseFactors:
    def test_zero_noise_zero_factors(self, paper_problem):
        np.testing.assert_array_equal(paper_problem.noise_factors(), 0.0)

    def test_formula(self):
        p = noisy_problem(noise=1e-6)
        expected = p.gamma_th * 1e-6 * p.links.lengths**p.alpha / p.power
        np.testing.assert_allclose(p.noise_factors(), expected)

    def test_power_reduces_noise_factor(self):
        lo = noisy_problem(noise=1e-6, power=1.0)
        hi = noisy_problem(noise=1e-6, power=10.0)
        assert (hi.noise_factors() < lo.noise_factors()).all()

    def test_longer_links_larger_factor(self):
        p = noisy_problem(noise=1e-6)
        order = np.argsort(p.links.lengths)
        nf = p.noise_factors()[order]
        assert (np.diff(nf) >= 0).all()

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            noisy_problem(noise=-1.0)


class TestServiceability:
    def test_all_serviceable_without_noise(self, paper_problem):
        assert paper_problem.serviceable().all()

    def test_heavy_noise_kills_long_links(self):
        # Choose noise so nu crosses gamma_eps inside the length range:
        # nu = noise * d^3; gamma_eps ~ 0.01; lengths in [5, 20].
        # noise = 0.01 / 12^3 makes links longer than 12 unserviceable.
        noise = 0.01005 / 12.0**3
        p = noisy_problem(noise=noise)
        s = p.serviceable()
        lengths = p.links.lengths
        assert not s[lengths > 13.0].any()
        assert s[lengths < 11.0].all()

    def test_unserviceable_link_infeasible_alone(self):
        noise = 0.02 / 10.0**3
        p = noisy_problem(noise=noise)
        bad = np.flatnonzero(~p.serviceable())
        assert bad.size > 0
        for i in bad[:5]:
            assert not p.is_feasible([int(i)])

    def test_serviceable_link_feasible_alone(self):
        noise = 0.005 / 20.0**3
        p = noisy_problem(noise=noise)
        good = np.flatnonzero(p.serviceable())
        for i in good[:5]:
            assert p.is_feasible([int(i)])


class TestClosedFormWithNoise:
    def test_success_probability_noise_factor(self):
        """Single active link: Pr = exp(-nu)."""
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        noise = 2e-4
        p = FadingRLS(links=links, noise=noise)
        prob = p.success_probabilities([0])[0]
        assert prob == pytest.approx(np.exp(-1.0 * noise * 10.0**3))

    def test_channel_function_matches_problem(self):
        from repro.channel.rayleigh import success_probability

        p = noisy_problem(n=30, noise=1e-5, seed=2)
        active = np.arange(30)
        via_problem = p.success_probabilities(active)[active]
        via_channel = success_probability(
            p.distances(), active, p.alpha, p.gamma_th, noise=p.noise, power=p.power
        )
        np.testing.assert_allclose(via_problem, via_channel, rtol=1e-10)

    def test_monte_carlo_agreement_with_noise(self):
        """Closed form with noise == empirical fading + noise."""
        from repro.sim.montecarlo import simulate_trials

        p = FadingRLS(links=paper_topology(20, region_side=150, seed=3), noise=5e-5)
        active = np.arange(20)
        success = simulate_trials(p, active, 60_000, seed=4)
        empirical = success.mean(axis=0)
        analytic = p.success_probabilities(active)[active]
        np.testing.assert_allclose(empirical, analytic, atol=0.01)

    def test_noise_lowers_success(self):
        quiet = noisy_problem(noise=0.0, seed=5)
        loud = noisy_problem(noise=1e-5, seed=5)
        active = np.arange(quiet.n_links)
        assert (
            loud.success_probabilities(active)[active]
            < quiet.success_probabilities(active)[active]
        ).all()


class TestCriticalNoise:
    def test_formula(self):
        from repro.experiments.noise_study import critical_noise
        from repro.core.problem import gamma_epsilon

        n_crit = critical_noise(20.0, 3.0, 1.0, 0.01)
        # At exactly n_crit the longest link's noise factor equals gamma_eps.
        assert n_crit * 20.0**3 == pytest.approx(gamma_epsilon(0.01))

    def test_boundary_behaviour(self):
        from repro.experiments.noise_study import critical_noise

        n_crit = critical_noise(20.0, 3.0, 1.0, 0.01)
        links = paper_topology(50, seed=0)
        below = FadingRLS(links=links, noise=0.99 * n_crit)
        above = FadingRLS(links=links, noise=1.5 * n_crit)
        assert below.serviceable().all()
        assert not above.serviceable().all()


class TestSchedulersUnderNoise:
    NOISE = 0.002 / 20.0**3  # long links keep ~60% of their budget

    @pytest.mark.parametrize(
        "name", ["ldp", "rle", "greedy", "dls", "random", "longest_first"]
    )
    def test_fading_schedulers_feasible(self, name):
        from repro.core.base import get_scheduler

        p = noisy_problem(n=150, noise=self.NOISE, seed=6)
        kwargs = {"seed": 0} if name in ("dls", "random") else {}
        s = get_scheduler(name)(p, **kwargs)
        assert p.is_feasible(s.active), name
        assert s.size >= 1

    def test_schedulers_skip_unserviceable(self):
        from repro.core.base import get_scheduler

        noise = 0.01005 / 12.0**3  # links > ~12 unserviceable
        p = noisy_problem(n=150, noise=noise, seed=7)
        bad = set(np.flatnonzero(~p.serviceable()).tolist())
        for name in ("ldp", "rle", "greedy", "dls"):
            kwargs = {"seed": 0} if name == "dls" else {}
            s = get_scheduler(name)(p, **kwargs)
            assert not (set(s.active.tolist()) & bad), name

    def test_exact_solvers_respect_noise(self):
        from repro.core.exact import branch_and_bound_schedule, brute_force_schedule, milp_schedule

        p = FadingRLS(
            links=paper_topology(9, region_side=120, seed=8), noise=0.004 / 20.0**3
        )
        bf = brute_force_schedule(p)
        bb = branch_and_bound_schedule(p)
        mi = milp_schedule(p)
        assert p.is_feasible(bf.active)
        r = p.scheduled_rate(bf.active)
        assert p.scheduled_rate(bb.active) == pytest.approx(r)
        assert p.scheduled_rate(mi.active) == pytest.approx(r, abs=1e-6)

    def test_noise_shrinks_optimum(self):
        from repro.core.exact import branch_and_bound_schedule

        links = paper_topology(10, region_side=120, seed=9)
        quiet = FadingRLS(links=links)
        loud = FadingRLS(links=links, noise=0.008 / 20.0**3)
        assert loud.scheduled_rate(
            branch_and_bound_schedule(loud).active
        ) <= quiet.scheduled_rate(branch_and_bound_schedule(quiet).active)

    def test_all_unserviceable_empty_schedules(self):
        from repro.core.base import get_scheduler

        p = noisy_problem(n=20, noise=1.0, seed=10)  # drowns everything
        assert not p.serviceable().any()
        for name in ("ldp", "rle", "greedy", "dls", "approx_diversity"):
            kwargs = {"seed": 0} if name == "dls" else {}
            assert get_scheduler(name)(p, **kwargs).size == 0, name

    def test_deterministic_budgets_with_noise(self):
        from repro.core.baselines.deterministic import deterministic_budgets

        p = noisy_problem(n=30, noise=1e-4, seed=11)
        np.testing.assert_allclose(
            deterministic_budgets(p), 1.0 - p.noise_factors()
        )
