"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def obs_enabled():
    """Observability switched on for one test, fully cleared afterwards."""
    from repro import obs

    obs.enable()
    obs.reset()
    yield obs
    obs.disable()
    obs.reset()


@pytest.fixture
def tiny_links() -> LinkSet:
    """Three well-separated short links: feasible all together."""
    senders = np.array([[0.0, 0.0], [1000.0, 0.0], [0.0, 1000.0]])
    receivers = senders + np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]])
    return LinkSet(senders=senders, receivers=receivers)


@pytest.fixture
def tight_links() -> LinkSet:
    """Three links crammed together: heavy mutual interference."""
    senders = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    receivers = senders + np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]])
    return LinkSet(senders=senders, receivers=receivers)


@pytest.fixture
def tiny_problem(tiny_links) -> FadingRLS:
    return FadingRLS(links=tiny_links, alpha=3.0, gamma_th=1.0, eps=0.01)


@pytest.fixture
def tight_problem(tight_links) -> FadingRLS:
    return FadingRLS(links=tight_links, alpha=3.0, gamma_th=1.0, eps=0.01)


@pytest.fixture
def paper_problem() -> FadingRLS:
    """A mid-size paper-style instance (deterministic seed)."""
    return FadingRLS(links=paper_topology(120, seed=7), alpha=3.0)


@pytest.fixture
def small_problem() -> FadingRLS:
    """A small, geographically tight instance exact solvers can handle."""
    return FadingRLS(links=paper_topology(10, region_side=120, seed=3), alpha=3.0)
