"""Tests for repro.geometry.distance."""

import numpy as np
import pytest

from repro.geometry.distance import (
    cross_distances,
    max_pairwise_distance,
    min_pairwise_distance,
    pairwise_distances,
    point_to_points,
)


class TestCrossDistances:
    def test_known_values(self):
        a = [[0.0, 0.0], [3.0, 4.0]]
        b = [[0.0, 0.0]]
        d = cross_distances(a, b)
        np.testing.assert_allclose(d, [[0.0], [5.0]])

    def test_shape(self):
        d = cross_distances(np.zeros((3, 2)), np.ones((4, 2)))
        assert d.shape == (3, 4)

    def test_matches_naive(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(5, 2))
        d = cross_distances(a, b)
        for i in range(6):
            for j in range(5):
                assert d[i, j] == pytest.approx(np.linalg.norm(a[i] - b[j]))

    def test_empty(self):
        d = cross_distances(np.zeros((0, 2)), np.zeros((3, 2)))
        assert d.shape == (0, 3)


class TestPairwiseDistances:
    def test_symmetric_zero_diag(self, rng):
        p = rng.normal(size=(7, 2))
        d = pairwise_distances(p)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_triangle_inequality(self, rng):
        p = rng.normal(size=(5, 2))
        d = pairwise_distances(p)
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-12


class TestPointToPoints:
    def test_values(self):
        out = point_to_points([0.0, 0.0], [[3.0, 4.0], [0.0, 1.0]])
        np.testing.assert_allclose(out, [5.0, 1.0])

    def test_bad_point(self):
        with pytest.raises(ValueError):
            point_to_points([0.0], [[1.0, 1.0]])


class TestMinMaxPairwise:
    def test_min(self):
        p = [[0, 0], [1, 0], [10, 0]]
        assert min_pairwise_distance(p) == pytest.approx(1.0)

    def test_max(self):
        p = [[0, 0], [1, 0], [10, 0]]
        assert max_pairwise_distance(p) == pytest.approx(10.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            min_pairwise_distance([[0.0, 0.0]])
        with pytest.raises(ValueError):
            max_pairwise_distance([[0.0, 0.0]])

    def test_coincident_points_min_zero(self):
        assert min_pairwise_distance([[1, 1], [1, 1], [2, 2]]) == 0.0
