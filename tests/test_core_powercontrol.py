"""Tests for the power-control extension."""

import numpy as np
import pytest

from repro.core.base import SchedulerError
from repro.core.baselines.naive import greedy_fading_schedule
from repro.core.powercontrol import (
    distance_proportional_powers,
    joint_power_schedule,
    min_power_assignment,
    min_uniform_power,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestPerLinkPowersModel:
    def test_uniform_powers_match_scalar(self):
        links = paper_topology(30, seed=0)
        scalar = FadingRLS(links=links, power=2.0)
        vector = FadingRLS(links=links, power=2.0, powers=np.full(30, 2.0))
        np.testing.assert_allclose(
            scalar.interference_matrix(), vector.interference_matrix()
        )
        assert vector.has_uniform_power

    def test_power_ratio_in_factors(self):
        links = LinkSet(
            senders=[[0.0, 0.0], [50.0, 0.0]],
            receivers=[[10.0, 0.0], [60.0, 0.0]],
        )
        p = FadingRLS(links=links, powers=np.array([4.0, 1.0]))
        f = p.interference_matrix()
        d = p.distances()
        # f[0, 1]: sender 0 (P=4) onto receiver 1 (own link P=1).
        expected = np.log1p(1.0 * 4.0 * d[0, 1] ** -3 / (1.0 * d[1, 1] ** -3))
        assert f[0, 1] == pytest.approx(expected)
        # f[1, 0]: sender 1 (P=1) onto receiver 0 (P=4): quieter.
        assert f[1, 0] < f[0, 1]

    def test_raising_own_power_helps_own_link(self):
        links = paper_topology(20, seed=1)
        base = FadingRLS(links=links)
        boosted = base.with_powers(np.where(np.arange(20) == 0, 10.0, 1.0))
        active = np.arange(20)
        assert (
            boosted.success_probabilities(active)[0]
            > base.success_probabilities(active)[0]
        )

    def test_bad_powers_rejected(self):
        links = paper_topology(5, seed=0)
        with pytest.raises(ValueError):
            FadingRLS(links=links, powers=np.array([1.0, 1.0, 0.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            FadingRLS(links=links, powers=np.ones(3))

    def test_restrict_carries_powers(self):
        links = paper_topology(6, seed=0)
        p = FadingRLS(links=links, powers=np.arange(1.0, 7.0))
        sub = p.restrict([1, 3])
        np.testing.assert_array_equal(sub.powers, [2.0, 4.0])

    def test_monte_carlo_respects_powers(self):
        from repro.sim.montecarlo import simulate_trials

        links = paper_topology(10, region_side=100, seed=2)
        p = FadingRLS(links=links, powers=np.linspace(1.0, 5.0, 10))
        active = np.arange(10)
        success = simulate_trials(p, active, 40_000, seed=3)
        analytic = p.success_probabilities(active)[active]
        np.testing.assert_allclose(success.mean(axis=0), analytic, atol=0.015)


class TestGuards:
    def test_ldp_rejects_nonuniform_power(self):
        from repro.core.ldp import ldp_schedule

        p = FadingRLS(links=paper_topology(10, seed=0), powers=np.arange(1.0, 11.0))
        with pytest.raises(SchedulerError):
            ldp_schedule(p)

    def test_rle_rejects_nonuniform_power(self):
        from repro.core.rle import rle_schedule

        p = FadingRLS(links=paper_topology(10, seed=0), powers=np.arange(1.0, 11.0))
        with pytest.raises(SchedulerError):
            rle_schedule(p)

    def test_greedy_accepts_nonuniform_power(self):
        p = FadingRLS(links=paper_topology(40, seed=0), powers=np.linspace(1, 3, 40))
        s = greedy_fading_schedule(p)
        assert p.is_feasible(s.active)


class TestDistanceProportional:
    def test_equalises_received_power(self):
        links = paper_topology(30, seed=4)
        powers = distance_proportional_powers(links, 3.0, target_received=2.0)
        received = powers * links.lengths**-3.0
        np.testing.assert_allclose(received, 2.0)

    def test_domain(self):
        links = paper_topology(3, seed=0)
        with pytest.raises(ValueError):
            distance_proportional_powers(links, 3.0, target_received=0.0)


class TestMinUniformPower:
    def test_zero_without_noise(self, paper_problem):
        assert min_uniform_power(paper_problem) == 0.0

    def test_makes_links_serviceable(self):
        links = paper_topology(50, seed=5)
        noisy = FadingRLS(links=links, noise=1e-3)
        assert not noisy.serviceable().all()
        p_min = min_uniform_power(noisy, headroom=0.5)
        powered = noisy.with_params(power=p_min)
        assert powered.serviceable().all()
        # Headroom: noise eats at most half of every budget.
        assert (powered.noise_factors() <= 0.5 * powered.gamma_eps + 1e-12).all()

    def test_headroom_domain(self, paper_problem):
        with pytest.raises(ValueError):
            min_uniform_power(paper_problem, headroom=1.0)


class TestMinPowerAssignment:
    def test_feasible_set_gets_finite_powers(self):
        links = paper_topology(60, seed=6)
        p = FadingRLS(links=links, noise=1e-6)
        base = greedy_fading_schedule(p)
        result = min_power_assignment(p, base.active)
        assert result.feasible
        powered = p.with_powers(result.powers)
        assert powered.is_feasible(base.active, tol=1e-6)

    def test_minimality_near_constraint_boundary(self):
        """At the fixed point, each receiver's load sits at ~gamma_eps
        (otherwise power could shrink further)."""
        links = paper_topology(40, seed=7)
        p = FadingRLS(links=links, noise=1e-6)
        active = greedy_fading_schedule(p).active
        result = min_power_assignment(p, active)
        powered = p.with_powers(result.powers)
        load = powered.interference_on(active) + powered.noise_factors()
        # Every active receiver is within a whisker of the budget —
        # except isolated links whose only requirement is the noise term.
        slack = powered.gamma_eps - load[active]
        assert (slack >= -1e-6).all()

    def test_uses_less_power_than_uniform(self):
        """Total power of the minimal assignment beats the smallest
        feasible *uniform* power times K."""
        links = paper_topology(50, seed=8)
        p = FadingRLS(links=links, noise=1e-6)
        active = greedy_fading_schedule(p).active
        k = active.size
        result = min_power_assignment(p, active)
        assert result.feasible
        # Smallest uniform power: bisection via feasibility.
        lo, hi = 0.0, 10.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if mid > 0 and p.with_params(power=mid).is_feasible(active):
                hi = mid
            else:
                lo = mid
        assert result.total_power <= hi * k * (1 + 1e-6)

    def test_infeasible_set_detected(self):
        """A set that violates even the noiseless budget has no power fix
        (uniform scaling cancels; the iteration must escape p_max)."""
        senders = np.array([[0.0, float(i)] for i in range(4)])
        receivers = senders + np.array([10.0, 0.0])
        p = FadingRLS(links=LinkSet(senders=senders, receivers=receivers))
        assert not p.is_feasible(np.arange(4))
        result = min_power_assignment(p, np.arange(4), max_iterations=60)
        assert not result.feasible

    def test_empty_active(self, paper_problem):
        result = min_power_assignment(paper_problem, [])
        assert result.feasible and result.total_power == 0.0


class TestJointPowerSchedule:
    def test_returns_powered_problem(self):
        p = FadingRLS(links=paper_topology(60, seed=9), noise=1e-7)
        schedule, powered = joint_power_schedule(
            p, greedy_fading_schedule, lambda pr: distance_proportional_powers(pr.links, pr.alpha)
        )
        assert not powered.has_uniform_power or len(set(powered.tx_powers())) == 1
        assert powered.is_feasible(schedule.active)
