"""Tests for the ``cache-vs-fresh`` differential check.

Clean scenarios must pass; the fault-injection class corrupts each
seam the check observes and proves the matching reason code fires.
"""

import numpy as np
import pytest

import repro.verify.cache as verify_cache
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.topology import paper_topology
from repro.verify.cache import (
    CODE_CACHE_EXACT,
    CODE_CACHE_FINGERPRINT,
    CODE_CACHE_INFEASIBLE,
    CODE_CACHE_QUALITY,
    CODE_CACHE_STORE,
    _cache_problem,
    check_cache_vs_fresh,
)
from repro.verify.differential import DIFFERENTIAL_CHECKS
from repro.verify.fuzz import Scenario, fuzz_scenarios
from repro.verify.harness import all_checks


def _scenario(n=10, seed=3, **problem_kwargs):
    problem = FadingRLS(links=paper_topology(n, seed=seed), **problem_kwargs)
    return Scenario(name=f"t-{n}-{seed}", family="paper", problem=problem, seed=seed)


class TestRegistration:
    def test_check_is_registered(self):
        assert DIFFERENTIAL_CHECKS["cache-vs-fresh"] is check_cache_vs_fresh

    def test_check_reaches_the_harness(self):
        assert "cache-vs-fresh" in all_checks()

    def test_reason_codes_are_stable_strings(self):
        assert CODE_CACHE_EXACT == "cache-exact-divergence"
        assert CODE_CACHE_FINGERPRINT == "cache-fingerprint-variance"
        assert CODE_CACHE_INFEASIBLE == "cache-warm-infeasible"
        assert CODE_CACHE_QUALITY == "cache-warm-quality-divergence"
        assert CODE_CACHE_STORE == "cache-store-divergence"


class TestCleanScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_paper_scenarios_pass(self, seed):
        assert check_cache_vs_fresh(_scenario(seed=seed)) == []

    def test_fuzzer_corpus_slice_passes(self):
        for sc in fuzz_scenarios(10, seed=1):
            assert check_cache_vs_fresh(sc) == []

    def test_noisy_scenario_passes(self):
        assert check_cache_vs_fresh(_scenario(noise=0.01)) == []

    def test_large_instances_are_truncated(self):
        scenario = _scenario(n=40)
        assert _cache_problem(scenario.problem).n_links == verify_cache._MAX_LINKS
        assert check_cache_vs_fresh(scenario) == []


def _codes(mismatches):
    return {m.code for m in mismatches}


class TestFaultDetection:
    """Each reason code fires when its seam is corrupted."""

    def test_exact_divergence_fires(self, monkeypatch):
        empty = Schedule(active=np.array([], dtype=np.int64), algorithm="rle")
        monkeypatch.setattr(verify_cache, "_cache_serve", lambda cache, prob: empty)
        mismatches = check_cache_vs_fresh(_scenario())
        assert CODE_CACHE_EXACT in _codes(mismatches)
        exact = [m for m in mismatches if m.code == CODE_CACHE_EXACT]
        assert {m.details["tier"] for m in exact} == {"miss", "exact-hit"}

    def test_fingerprint_variance_fires(self, monkeypatch):
        def not_congruent(problem, rng):
            return verify_cache._jittered_copy(problem, rng)  # moved, not congruent

        monkeypatch.setattr(verify_cache, "_congruent_copy", not_congruent)
        mismatches = check_cache_vs_fresh(_scenario())
        assert _codes(mismatches) == {CODE_CACHE_FINGERPRINT}

    def test_warm_infeasible_fires(self, monkeypatch):
        real = verify_cache._cache_serve

        def corrupted(cache, problem):
            result = real(cache, problem)
            if result.diagnostics.get("cache") is None:
                return result  # leave the exact tier intact
            return Schedule(
                active=np.arange(problem.n_links),  # everyone at once
                algorithm="rle",
                diagnostics={"cache": "canonical"},
            )

        monkeypatch.setattr(verify_cache, "_cache_serve", corrupted)
        mismatches = check_cache_vs_fresh(_scenario())
        assert _codes(mismatches) == {CODE_CACHE_INFEASIBLE}

    @pytest.mark.parametrize("tier", ["canonical", "warm"])
    def test_quality_divergence_fires(self, monkeypatch, tier):
        real = verify_cache._cache_serve

        def degraded(cache, problem):
            result = real(cache, problem)
            if result.diagnostics.get("cache") is None:
                return result
            return Schedule(  # feasible but rate zero
                active=np.array([], dtype=np.int64),
                algorithm="rle",
                diagnostics={"cache": tier},
            )

        monkeypatch.setattr(verify_cache, "_cache_serve", degraded)
        mismatches = check_cache_vs_fresh(_scenario())
        quality = [m for m in mismatches if m.code == CODE_CACHE_QUALITY]
        assert quality and all(m.details["tier"] == tier for m in quality)

    def test_store_divergence_fires(self, monkeypatch):
        def torn(problem):
            stored = verify_cache._fresh_schedule(problem)
            replayed = Schedule(active=np.array([], dtype=np.int64), algorithm="rle")
            return stored, replayed

        monkeypatch.setattr(verify_cache, "_persisted_replay", torn)
        mismatches = check_cache_vs_fresh(_scenario())
        assert _codes(mismatches) == {CODE_CACHE_STORE}
