"""Tests for the LDP algorithm (Algorithm 1, Thms 4.1-4.2)."""

import numpy as np
import pytest

from repro.core.ldp import ldp_candidates, ldp_schedule
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import exponential_length_topology, paper_topology


class TestLdpBasics:
    def test_empty_instance(self):
        p = FadingRLS(links=LinkSet.empty())
        assert ldp_schedule(p).size == 0

    def test_single_link(self):
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        p = FadingRLS(links=links)
        s = ldp_schedule(p)
        assert s.size == 1 and 0 in s

    def test_schedules_at_least_one_link(self, paper_problem):
        assert ldp_schedule(paper_problem).size >= 1

    def test_deterministic(self, paper_problem):
        a = ldp_schedule(paper_problem)
        b = ldp_schedule(paper_problem)
        np.testing.assert_array_equal(a.active, b.active)

    def test_diagnostics_populated(self, paper_problem):
        s = ldp_schedule(paper_problem)
        assert s.algorithm == "ldp"
        for key in ("class_magnitude", "color", "n_candidates", "total_rate"):
            assert key in s.diagnostics

    def test_invalid_beta_scale(self, paper_problem):
        with pytest.raises(ValueError):
            ldp_schedule(paper_problem, beta_scale=0.0)


class TestThm41Feasibility:
    """Every LDP candidate — not just the winner — must be feasible."""

    @pytest.mark.parametrize("seed", range(4))
    def test_all_candidates_feasible_default_alpha(self, seed):
        p = FadingRLS(links=paper_topology(150, seed=seed))
        for h, color, active in ldp_candidates(p):
            assert p.is_feasible(active), (h, color)

    @pytest.mark.parametrize("alpha", [2.5, 3.0, 4.0, 5.0])
    def test_winner_feasible_across_alpha(self, alpha):
        p = FadingRLS(links=paper_topology(150, seed=0), alpha=alpha)
        s = ldp_schedule(p)
        assert p.is_feasible(s.active)

    @pytest.mark.parametrize("alpha", [2.5, 3.5, 4.5, 6.0])
    def test_rigorous_mode_feasible(self, alpha):
        p = FadingRLS(links=paper_topology(150, seed=1), alpha=alpha)
        for h, color, active in ldp_candidates(p, rigorous=True):
            assert p.is_feasible(active)

    def test_diverse_lengths_feasible(self):
        p = FadingRLS(links=exponential_length_topology(120, seed=2))
        for _, _, active in ldp_candidates(p):
            assert p.is_feasible(active)


class TestCandidateStructure:
    def test_candidate_count_is_4gL(self, paper_problem):
        from repro.network.diversity import length_diversity

        cands = ldp_candidates(paper_problem)
        assert len(cands) == 4 * length_diversity(paper_problem.links)

    def test_one_receiver_per_same_color_square(self):
        """Within one candidate, receivers occupy distinct same-colour cells."""
        from repro.core.bounds import ldp_beta, ldp_square_size
        from repro.geometry.grid import GridPartition

        p = FadingRLS(links=paper_topology(200, seed=5))
        delta = float(p.links.lengths.min())
        beta = ldp_beta(p.alpha, p.gamma_th, p.gamma_eps)
        for h, color, active in ldp_candidates(p):
            grid = GridPartition(ldp_square_size(h, delta, beta))
            cells = grid.cell_of(p.links.receivers[active])
            # All picked receivers in distinct cells...
            assert len({tuple(c) for c in cells}) == len(active)
            # ...and all of the candidate's colour.
            colors = grid.color_of(p.links.receivers[active])
            assert (colors == color).all()

    def test_class_length_bound_respected(self):
        from repro.network.diversity import class_length_bound

        p = FadingRLS(links=exponential_length_topology(150, seed=3))
        for h, _, active in ldp_candidates(p):
            if active.size:
                assert (p.links.lengths[active] < class_length_bound(p.links, h) + 1e-9).all()

    def test_per_square_pick_is_max_rate(self):
        """With heterogeneous rates, each square's winner has the top rate."""
        from repro.core.bounds import ldp_beta, ldp_square_size
        from repro.geometry.grid import GridPartition
        from repro.network.topology import random_rates_topology

        links = random_rates_topology(150, seed=4)
        p = FadingRLS(links=links)
        delta = float(links.lengths.min())
        beta = ldp_beta(p.alpha, p.gamma_th, p.gamma_eps)
        from repro.network.diversity import length_classes, length_diversity_set

        mags = length_diversity_set(links)
        classes = length_classes(links)
        cands = ldp_candidates(p)
        for (h, color, active), h2, idx in [
            (cands[i * 4 + c], mags[i], classes[i])
            for i in range(len(mags))
            for c in range(4)
        ]:
            grid = GridPartition(ldp_square_size(h, delta, beta))
            cells_all = grid.cell_of(links.receivers[idx])
            colors_all = grid.color_of(links.receivers[idx])
            for a in active:
                cell_a = grid.cell_of(links.receivers[[a]])[0]
                same_cell = idx[
                    (cells_all == cell_a).all(axis=1) & (colors_all == color)
                ]
                assert links.rates[a] == links.rates[same_cell].max()


class TestAblationVariants:
    def test_two_sided_classes_also_feasible(self):
        p = FadingRLS(links=exponential_length_topology(120, seed=6))
        for _, _, active in ldp_candidates(p, two_sided=True):
            assert p.is_feasible(active)

    def test_one_sided_at_least_as_good_with_uniform_rates(self):
        """The paper's improvement: one-sided classes offer a superset of
        candidates per class, so with uniform rates the winner is >=."""
        for seed in range(5):
            p = FadingRLS(links=exponential_length_topology(100, seed=seed))
            one = ldp_schedule(p, two_sided=False)
            two = ldp_schedule(p, two_sided=True)
            assert p.scheduled_rate(one.active) >= p.scheduled_rate(two.active)

    def test_beta_scale_conservative(self, paper_problem):
        """Larger squares -> fewer scheduled links (weak monotonicity)."""
        base = ldp_schedule(paper_problem, beta_scale=1.0)
        big = ldp_schedule(paper_problem, beta_scale=3.0)
        assert big.size <= base.size


class TestThm42Ratio:
    @pytest.mark.parametrize("seed", range(5))
    def test_within_16gl_of_optimum(self, seed):
        from repro.core.bounds import ldp_approximation_ratio
        from repro.core.exact import branch_and_bound_schedule
        from repro.network.diversity import length_diversity

        links = paper_topology(12, region_side=150, seed=seed)
        p = FadingRLS(links=links)
        opt = p.scheduled_rate(branch_and_bound_schedule(p).active)
        ldp = p.scheduled_rate(ldp_schedule(p).active)
        assert ldp > 0
        assert opt / ldp <= ldp_approximation_ratio(length_diversity(links)) + 1e-9
