"""Broker semantics: coalescing bit-identity, deterministic backpressure.

The three contracts docs/SERVICE.md promises:

- **bit-identity** — whatever mix of batching and coalescing serves a
  request, the returned schedule is bit-identical to a direct
  scheduler call on the same problem (Hypothesis-probed over random
  instances, duplicate mixes, and batch sizes);
- **deterministic backpressure** — a seeded overload burst against a
  bounded queue accepts/rejects the exact same positions on every run,
  and per-tenant token buckets under an injectable clock reject on a
  schedule that is a pure function of the timestamps;
- **accounting** — requests = scheduled + coalesced + rejected +
  errors, with no silent losses.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.network.delta import LinkDelta
from repro.network.topology import paper_topology
from repro.service.broker import (
    Overloaded,
    RateLimited,
    ScheduleBroker,
    SessionExists,
    SessionLimit,
    TokenBucket,
    UnknownSession,
)


def _problem(n: int, seed: int) -> FadingRLS:
    return FadingRLS(links=paper_topology(n, seed=seed))


def _run(coro):
    return asyncio.run(coro)


# -- serving bit-identity --------------------------------------------


class TestServingBitIdentity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(3, 12),
        seed=st.integers(0, 500),
        duplicates=st.integers(1, 5),
        batch_max=st.sampled_from([1, 2, 32]),
    )
    def test_batched_coalesced_equals_direct(self, n, seed, duplicates, batch_max):
        problem = _problem(n, seed)
        direct = get_scheduler("rle")(problem)

        async def drive():
            broker = ScheduleBroker(batch_max=batch_max, n_workers=2, inline=True)
            await broker.start()
            try:
                return await asyncio.gather(
                    *(broker.submit(problem) for _ in range(duplicates))
                )
            finally:
                await broker.close()

        for result in _run(drive()):
            assert np.array_equal(result["schedule"].active, direct.active)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_distinct_problems_all_bit_identical(self, seed):
        problems = [_problem(4 + i, seed * 7 + i) for i in range(5)]
        directs = [get_scheduler("rle")(p) for p in problems]

        async def drive():
            broker = ScheduleBroker(batch_max=3, n_workers=2, inline=True)
            await broker.start()
            try:
                return await asyncio.gather(*(broker.submit(p) for p in problems))
            finally:
                await broker.close()

        for result, direct in zip(_run(drive()), directs):
            assert np.array_equal(result["schedule"].active, direct.active)

    def test_coalescing_counts_one_run_per_key(self):
        problem = _problem(10, 3)

        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            try:
                await asyncio.gather(*(broker.submit(problem) for _ in range(8)))
                return broker.stats
            finally:
                await broker.close()

        stats = _run(drive())
        assert stats["requests"] == 8
        assert stats["scheduled"] == 1
        assert stats["coalesced"] == 7

    def test_cache_tier_on_replay(self):
        problem = _problem(8, 5)

        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            try:
                first = await broker.submit(problem)
                second = await broker.submit(problem)
                return first, second
            finally:
                await broker.close()

        first, second = _run(drive())
        assert first["tier"] == "miss" and not first["coalesced"]
        assert second["tier"] == "cache"
        assert np.array_equal(first["schedule"].active, second["schedule"].active)

    def test_no_cache_mode_still_bit_identical(self):
        problem = _problem(9, 11)
        direct = get_scheduler("rle")(problem)

        async def drive():
            broker = ScheduleBroker(use_cache=False, inline=True)
            await broker.start()
            try:
                return await broker.submit(problem)
            finally:
                await broker.close()

        assert np.array_equal(_run(drive())["schedule"].active, direct.active)

    def test_scheduler_error_fails_only_its_future(self):
        good = _problem(6, 1)

        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            try:
                ok = await broker.submit(good)
                with pytest.raises(KeyError):
                    await broker.submit(good, scheduler="no-such-scheduler")
                ok2 = await broker.submit(good)
                return ok, ok2, broker.stats
            finally:
                await broker.close()

        ok, ok2, _stats = _run(drive())
        assert np.array_equal(ok["schedule"].active, ok2["schedule"].active)


# -- deterministic backpressure --------------------------------------


def _burst_pattern(problems, queue_limit):
    """(accepted, rejected) index sets of one stalled-broker burst."""

    async def drive():
        broker = ScheduleBroker(queue_limit=queue_limit, inline=True)
        tasks = [asyncio.ensure_future(broker.submit(p)) for p in problems]
        await asyncio.sleep(0)
        rejected = [
            i
            for i, t in enumerate(tasks)
            if t.done() and isinstance(t.exception(), Overloaded)
        ]
        await broker.start()
        accepted = []
        for i, task in enumerate(tasks):
            if i not in rejected:
                await task
                accepted.append(i)
        await broker.close()
        return accepted, rejected

    return asyncio.run(drive())


class TestBackpressure:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 300),
        queue_limit=st.integers(1, 5),
        burst=st.integers(6, 10),
    )
    def test_overload_burst_rejects_deterministically(self, seed, queue_limit, burst):
        problems = [_problem(3 + i % 4, seed * 31 + i) for i in range(burst)]
        first = _burst_pattern(problems, queue_limit)
        second = _burst_pattern(problems, queue_limit)
        assert first == second
        accepted, rejected = first
        assert accepted == list(range(queue_limit))
        assert rejected == list(range(queue_limit, burst))

    def test_queue_full_raises_overloaded_with_code(self):
        problems = [_problem(3 + i, 50 + i) for i in range(4)]

        async def drive():
            broker = ScheduleBroker(queue_limit=2, inline=True)
            tasks = [asyncio.ensure_future(broker.submit(p)) for p in problems]
            await asyncio.sleep(0)
            errors = [t.exception() for t in tasks if t.done() and t.exception()]
            await broker.start()
            await asyncio.gather(*tasks, return_exceptions=True)
            await broker.close()
            return errors, broker.stats

        errors, stats = _run(drive())
        assert len(errors) == 2
        assert all(e.code == "queue-full" and e.status == 503 for e in errors)
        assert stats["rejected_503"] == 2
        assert stats["requests"] == 4

    def test_accounting_balances_under_overload(self):
        problems = [_problem(3 + i % 3, i) for i in range(7)]

        async def drive():
            broker = ScheduleBroker(queue_limit=2, inline=True)
            tasks = [asyncio.ensure_future(broker.submit(p)) for p in problems]
            await asyncio.sleep(0)
            await broker.start()
            await asyncio.gather(*tasks, return_exceptions=True)
            await broker.close()
            return broker.stats

        stats = _run(drive())
        accounted = (
            stats["scheduled"]
            + stats["coalesced"]
            + stats["rejected_429"]
            + stats["rejected_503"]
            + stats["errors"]
        )
        assert accounted == stats["requests"] == 7


# -- token buckets ---------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.now = 0.5  # one token refilled
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        clock.now = 100.0
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(0.5, 20.0),
        burst=st.floats(1.0, 10.0),
        steps=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=30),
    )
    def test_accept_pattern_is_clock_deterministic(self, rate, burst, steps):
        def pattern():
            clock = FakeClock()
            bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
            out = []
            for dt in steps:
                clock.now += dt
                out.append(bucket.try_acquire())
            return out

        assert pattern() == pattern()

    def test_broker_applies_tenant_buckets(self):
        problem = _problem(6, 2)
        clock = FakeClock()

        async def drive():
            broker = ScheduleBroker(
                tenant_rate=1.0, tenant_burst=2.0, clock=clock, inline=True
            )
            await broker.start()
            try:
                await broker.submit(problem, tenant="a")
                await broker.submit(problem, tenant="a")
                with pytest.raises(RateLimited) as exc_info:
                    await broker.submit(problem, tenant="a")
                # tenant isolation: b's bucket is untouched by a's burn
                await broker.submit(problem, tenant="b")
                clock.now += 1.0
                await broker.submit(problem, tenant="a")
                return exc_info.value, broker.stats
            finally:
                await broker.close()

        err, stats = _run(drive())
        assert err.status == 429 and err.code == "tenant-rate-exceeded"
        assert err.retry_after == pytest.approx(1.0)
        assert stats["rejected_429"] == 1
        assert stats["tenants"] == 2


# -- sessions --------------------------------------------------------


class TestSessions:
    def test_open_delta_matches_incremental_engine(self):
        problem = _problem(10, 9)
        delta = LinkDelta(removes=np.array([1, 3]))

        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            try:
                opened = await broker.open_session("s", problem)
                repaired = await broker.apply_delta("s", delta)
                return opened, repaired
            finally:
                await broker.close()

        opened, repaired = _run(drive())
        assert opened["seq"] == 0 and repaired["seq"] == 1
        from repro.core.incremental import IncrementalScheduler

        engine = IncrementalScheduler(problem.links)
        assert np.array_equal(opened["schedule"].active, engine.schedule().active)
        assert np.array_equal(repaired["schedule"].active, engine.step(delta).active)

    def test_unknown_and_duplicate_sessions(self):
        problem = _problem(5, 4)

        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            try:
                with pytest.raises(UnknownSession):
                    await broker.apply_delta("ghost", LinkDelta())
                await broker.open_session("s", problem)
                with pytest.raises(SessionExists):
                    await broker.open_session("s", problem)
                assert broker.close_session("s") is True
                assert broker.close_session("s") is False
            finally:
                await broker.close()

        _run(drive())

    def test_session_capacity_503(self):
        async def drive():
            broker = ScheduleBroker(max_sessions=2, inline=True)
            await broker.start()
            try:
                await broker.open_session("a", _problem(4, 1))
                await broker.open_session("b", _problem(4, 2))
                with pytest.raises(SessionLimit) as exc_info:
                    await broker.open_session("c", _problem(4, 3))
                return exc_info.value
            finally:
                await broker.close()

        err = _run(drive())
        assert err.status == 503 and err.code == "session-capacity"


# -- lifecycle -------------------------------------------------------


class TestLifecycle:
    def test_submit_after_close_is_overloaded(self):
        async def drive():
            broker = ScheduleBroker(inline=True)
            await broker.start()
            await broker.close()
            with pytest.raises(Overloaded):
                await broker.submit(_problem(4, 0))

        _run(drive())

    def test_executor_mode_matches_inline(self):
        problem = _problem(11, 21)

        async def drive(inline):
            broker = ScheduleBroker(inline=inline, n_workers=2)
            await broker.start()
            try:
                return (await broker.submit(problem))["schedule"]
            finally:
                await broker.close()

        a = _run(drive(True))
        b = _run(drive(False))
        assert np.array_equal(a.active, b.active)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ScheduleBroker(queue_limit=0)
        with pytest.raises(ValueError):
            ScheduleBroker(batch_max=0)
        with pytest.raises(ValueError):
            ScheduleBroker(n_workers=0)
        with pytest.raises(KeyError):
            ScheduleBroker(scheduler="no-such")
