"""Metrics registry: instrument semantics and the determinism contract."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics


class TestDisabledPath:
    def test_all_instruments_noop_when_disabled(self):
        obs_metrics.inc("a.b", 5)
        obs_metrics.gauge("c.d", 1.5)
        obs_metrics.observe("e.f", 2.0)
        snap = obs_metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestCounters:
    def test_accumulates_ints(self, obs_enabled):
        obs_metrics.inc("a.b")
        obs_metrics.inc("a.b", 4)
        assert obs_metrics.snapshot()["counters"] == {"a.b": 5}

    def test_accepts_numpy_integers(self, obs_enabled):
        obs_metrics.inc("a.b", np.int64(3))
        value = obs_metrics.snapshot()["counters"]["a.b"]
        assert value == 3 and type(value) is int

    def test_rejects_floats(self, obs_enabled):
        with pytest.raises(TypeError):
            obs_metrics.inc("a.b", 1.5)

    def test_rejects_negative(self, obs_enabled):
        with pytest.raises(ValueError):
            obs_metrics.inc("a.b", -1)


class TestGauges:
    def test_last_write_wins(self, obs_enabled):
        obs_metrics.gauge("g.x", 1.0)
        obs_metrics.gauge("g.x", 7.5)
        assert obs_metrics.snapshot()["gauges"]["g.x"] == {
            "value": 7.5,
            "updates": 2,
        }


class TestHistograms:
    def test_power_of_two_buckets(self, obs_enabled):
        for v in (0.0, 0.75, 1.0, 1.5, 3.0, 4.0):
            obs_metrics.observe("h.x", v)
        h = obs_metrics.snapshot()["histograms"]["h.x"]
        # buckets: (2^(e-1), 2^e]; exact powers land in their own exponent
        assert h["buckets"] == {"zero": 1, "0": 2, "1": 1, "2": 2}
        assert h["count"] == 6
        assert h["min"] == 0.0 and h["max"] == 4.0

    def test_rejects_negative_and_nan(self, obs_enabled):
        with pytest.raises(ValueError):
            obs_metrics.observe("h.x", -0.5)
        with pytest.raises(ValueError):
            obs_metrics.observe("h.x", float("nan"))


class TestSnapshotCanonicalBytes:
    def test_snapshot_json_is_canonical(self, obs_enabled):
        obs_metrics.inc("b.two", 2)
        obs_metrics.inc("a.one", 1)
        s = obs_metrics.snapshot_json()
        # sorted keys, no whitespace: byte-stable regardless of insert order
        assert s.index('"a.one"') < s.index('"b.two"')
        assert " " not in s
        assert json.loads(s)["counters"] == {"a.one": 1, "b.two": 2}

    def test_snapshot_is_deep_copy(self, obs_enabled):
        obs_metrics.observe("h.x", 1.0)
        snap = obs_metrics.snapshot()
        snap["histograms"]["h.x"]["buckets"]["0"] = 999
        assert obs_metrics.snapshot()["histograms"]["h.x"]["buckets"]["0"] == 1


def _events_snapshot(events):
    """Apply (kind, name, value) events to a clean registry; snapshot."""
    obs_metrics.reset()
    for kind, name, value in events:
        getattr(obs_metrics, kind)(name, value)
    snap = obs_metrics.snapshot()
    obs_metrics.reset()
    return snap


class TestMergeSemantics:
    EVENTS = [
        ("inc", "c.x", 1),
        ("observe", "h.x", 3.0),
        ("inc", "c.x", 4),
        ("gauge", "g.x", 2.0),
        ("observe", "h.x", 0.5),
        ("inc", "c.y", 2),
        ("gauge", "g.x", 9.0),
        ("observe", "h.y", 4.0),
    ]

    def test_merge_invariant_under_grouping(self, obs_enabled):
        whole = _events_snapshot(self.EVENTS)
        for cut in range(len(self.EVENTS) + 1):
            parts = [
                _events_snapshot(self.EVENTS[:cut]),
                _events_snapshot(self.EVENTS[cut:]),
            ]
            merged = obs_metrics.merge(parts)
            assert obs_metrics.snapshot_json(merged) == obs_metrics.snapshot_json(
                whole
            ), f"split at {cut} changed the merged snapshot"

    def test_merge_into_registry_matches_direct_writes(self, obs_enabled):
        part_a = _events_snapshot(self.EVENTS[:3])
        part_b = _events_snapshot(self.EVENTS[3:])
        whole = _events_snapshot(self.EVENTS)
        obs_metrics.merge_into_registry(part_a)
        obs_metrics.merge_into_registry(part_b)
        assert obs_metrics.snapshot_json() == obs_metrics.snapshot_json(whole)

    def test_gauge_last_write_follows_merge_order(self, obs_enabled):
        a = _events_snapshot([("gauge", "g.x", 1.0)])
        b = _events_snapshot([("gauge", "g.x", 2.0)])
        assert obs_metrics.merge([a, b])["gauges"]["g.x"]["value"] == 2.0
        assert obs_metrics.merge([b, a])["gauges"]["g.x"]["value"] == 1.0

    def test_merge_empty_iterable(self, obs_enabled):
        assert obs_metrics.merge([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
