"""Tests for the LP relaxation upper bound."""

import numpy as np
import pytest

from repro.core.exact import branch_and_bound_schedule
from repro.core.problem import FadingRLS
from repro.core.relaxation import lp_upper_bound, randomized_rounding
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestLpUpperBound:
    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_the_optimum(self, seed):
        p = FadingRLS(links=paper_topology(12, region_side=150, seed=seed))
        opt = p.scheduled_rate(branch_and_bound_schedule(p).active)
        bound = lp_upper_bound(p)
        assert bound.upper_bound >= opt - 1e-6

    def test_never_exceeds_trivial(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        assert bound.upper_bound <= bound.trivial_bound + 1e-6
        assert 0.0 < bound.tightness <= 1.0 + 1e-9

    def test_fractional_in_unit_box(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        assert (bound.fractional >= -1e-9).all()
        assert (bound.fractional <= 1 + 1e-9).all()

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        bound = lp_upper_bound(p)
        assert bound.upper_bound == 0.0 and bound.tightness == 1.0

    def test_loose_instance_all_ones(self):
        """Far-apart links: the LP packs everything (bound == trivial)."""
        p = FadingRLS(links=paper_topology(8, region_side=50_000, seed=0))
        bound = lp_upper_bound(p)
        assert bound.upper_bound == pytest.approx(8.0, abs=1e-6)

    def test_scales_past_exact_solvers(self):
        p = FadingRLS(links=paper_topology(300, seed=0))
        bound = lp_upper_bound(p)
        # Sanity: the bound must dominate the best heuristic we have.
        from repro.core.localsearch import local_search_schedule

        heur = p.scheduled_rate(local_search_schedule(p, seed=0).active)
        assert bound.upper_bound >= heur - 1e-6


class TestRandomizedRounding:
    def test_output_feasible(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        idx = randomized_rounding(paper_problem, bound, n_samples=20, seed=0)
        assert paper_problem.is_feasible(idx)

    def test_reproducible(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        a = randomized_rounding(paper_problem, bound, n_samples=10, seed=3)
        b = randomized_rounding(paper_problem, bound, n_samples=10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_nonempty_on_paper_instances(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        idx = randomized_rounding(paper_problem, bound, n_samples=20, seed=1)
        assert idx.size >= 1
