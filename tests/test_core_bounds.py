"""Tests for repro.core.bounds — the constants actually certify the proofs."""

import numpy as np
import pytest

from repro.core.bounds import (
    interferer_count_bound,
    ldp_approximation_ratio,
    ldp_beta,
    ldp_rigorous_beta,
    ldp_ring_interference_bound,
    ldp_square_capacity,
    ldp_square_size,
    rle_approximation_ratio,
    rle_c1,
    rle_ring_interference_bound,
)
from repro.core.problem import gamma_epsilon

G_EPS = gamma_epsilon(0.01)


class TestLdpBeta:
    def test_eq37_value(self):
        from repro.utils.zeta import riemann_zeta

        beta = ldp_beta(3.0, 1.0, G_EPS)
        expected = (8 * riemann_zeta(2.0) * 1.0 / G_EPS) ** (1 / 3)
        assert beta == pytest.approx(expected)

    def test_certifies_paper_ring_sum(self):
        """Thm 4.1's accounting: sum_q 8q gamma_th/(2q beta - 1)^alpha <= gamma_eps."""
        for alpha in (2.5, 3.0, 4.0, 5.0):
            beta = ldp_beta(alpha, 1.0, G_EPS)
            total = ldp_ring_interference_bound(alpha, 1.0, beta)
            assert total <= G_EPS * (1 + 1e-9)

    def test_smaller_eps_larger_squares(self):
        assert ldp_beta(3.0, 1.0, gamma_epsilon(0.001)) > ldp_beta(3.0, 1.0, gamma_epsilon(0.1))

    def test_alpha_domain(self):
        with pytest.raises(ValueError):
            ldp_beta(2.0, 1.0, G_EPS)


class TestLdpRigorousBeta:
    @pytest.mark.parametrize("alpha", [2.5, 3.0, 4.5, 6.0])
    def test_certifies_worst_case_ring_sum(self, alpha):
        beta = ldp_rigorous_beta(alpha, 1.0, G_EPS)
        total = ldp_ring_interference_bound(alpha, 1.0, beta, worst_case_geometry=True)
        assert total <= G_EPS * (1 + 1e-6)

    def test_nearly_tight(self):
        """Bisection should land close to the boundary (not wastefully large)."""
        beta = ldp_rigorous_beta(3.0, 1.0, G_EPS)
        total_just_below = ldp_ring_interference_bound(
            3.0, 1.0, beta * 0.999, worst_case_geometry=True
        )
        assert total_just_below > G_EPS


class TestLdpSquareSize:
    def test_doubling_per_magnitude(self):
        beta = 10.0
        assert ldp_square_size(1, 5.0, beta) == 2 * ldp_square_size(0, 5.0, beta)

    def test_value(self):
        assert ldp_square_size(0, 5.0, 10.0) == pytest.approx(100.0)

    def test_domain(self):
        with pytest.raises(ValueError):
            ldp_square_size(-1, 5.0, 10.0)
        with pytest.raises(ValueError):
            ldp_square_size(0, 0.0, 10.0)


class TestLdpSquareCapacity:
    def test_eq49_positive_integer(self):
        u = ldp_square_capacity(3.0, 1.0, G_EPS)
        assert isinstance(u, int) and u >= 1

    def test_capacity_pigeonhole_holds_empirically(self):
        """Pack receivers into one LDP square until the interference
        budget breaks: the break point must not exceed u."""
        alpha, gamma_th = 3.0, 1.0
        u = ldp_square_capacity(alpha, gamma_th, G_EPS)
        beta = ldp_beta(alpha, gamma_th, G_EPS)
        # Worst case of Eq. 52: links of max class length 2 delta at
        # mutual distance = square diagonal (the weakest interference).
        delta = 1.0
        side = ldp_square_size(0, delta, beta)
        diag = side * np.sqrt(2)
        # Each interferer contributes at least ln(1 + gamma (2 delta / diag)^alpha).
        f_min = np.log1p(gamma_th * (2 * delta / diag) ** alpha)
        # With u interferers the budget must be exceeded (Thm 4.2's claim).
        assert u * f_min >= G_EPS * (1 - 1e-9)


class TestApproximationRatios:
    def test_ldp_ratio(self):
        assert ldp_approximation_ratio(1) == 16.0
        assert ldp_approximation_ratio(3) == 48.0

    def test_ldp_ratio_domain(self):
        with pytest.raises(ValueError):
            ldp_approximation_ratio(0)

    def test_rle_ratio_formula(self):
        r = rle_approximation_ratio(3.0, 0.01, 1.0, 0.5)
        expected = 27 * 5 * 0.01 / (0.5 * 0.99 * 1.0) + 1
        assert r == pytest.approx(expected)

    def test_rle_ratio_above_one(self):
        assert rle_approximation_ratio(3.0, 0.01, 1.0, 0.5) > 1.0


class TestRleC1:
    def test_eq59_value(self):
        from repro.utils.zeta import riemann_zeta

        c1 = rle_c1(3.0, 1.0, G_EPS, 0.5)
        inner = 12 * riemann_zeta(2.0) * 1.0 / (G_EPS * 0.5)
        assert c1 == pytest.approx(np.sqrt(2) * inner ** (1 / 3) + 1)

    def test_certifies_ring_sum(self):
        """Thm 4.3: the ring sum with Eq. 59's c1 fits (1 - c2) gamma_eps."""
        for alpha in (2.5, 3.0, 4.0):
            for c2 in (0.25, 0.5, 0.75):
                c1 = rle_c1(alpha, 1.0, G_EPS, c2)
                total = rle_ring_interference_bound(alpha, 1.0, c1)
                assert total <= (1 - c2) * G_EPS * (1 + 1e-9)

    def test_smaller_c2_smaller_radius(self):
        # Smaller c2 leaves more budget for later picks -> smaller c1.
        assert rle_c1(3.0, 1.0, G_EPS, 0.1) < rle_c1(3.0, 1.0, G_EPS, 0.9)

    def test_domain(self):
        with pytest.raises(ValueError):
            rle_c1(2.0, 1.0, G_EPS, 0.5)
        with pytest.raises(ValueError):
            rle_c1(3.0, 1.0, G_EPS, 1.0)


class TestInterfererCountBound:
    def test_lemma42_empirical(self):
        """No feasible schedule can pack more senders near a link than
        Lemma 4.2 allows."""
        from repro.core.problem import FadingRLS
        from repro.network.links import LinkSet

        # Build k senders at distance exactly k_radius * d from s_0 and
        # check that if they exceed the bound, the set is infeasible.
        alpha, gamma_th, eps = 3.0, 1.0, 0.01
        d_own = 10.0
        k_radius = 1.0
        bound = interferer_count_bound(alpha, eps, gamma_th, k_radius)
        n_over = int(np.ceil(bound)) + 1
        # Put n_over senders on a circle of radius k_radius * d_own
        # around receiver r_0; every one interferes with r_0 at factor
        # >= ln(1 + gamma (d_own / (2 d_own))^alpha) -- strong enough.
        angles = np.linspace(0, 2 * np.pi, n_over, endpoint=False)
        center = np.array([0.0, 0.0])
        senders = [center + np.array([d_own, 0.0])]  # s_0, r_0 at origin...
        receivers = [center]
        for a in angles:
            s = center + k_radius * d_own * np.array([np.cos(a), np.sin(a)])
            senders.append(s)
            receivers.append(s + np.array([0.0, d_own]))
        links = LinkSet(senders=np.array(senders), receivers=np.array(receivers))
        problem = FadingRLS(links=links, alpha=alpha, gamma_th=gamma_th, eps=eps)
        assert not problem.is_feasible(np.arange(len(links)))

    def test_monotone_in_k(self):
        assert interferer_count_bound(3.0, 0.01, 1.0, 2.0) > interferer_count_bound(
            3.0, 0.01, 1.0, 1.0
        )

    def test_domain(self):
        with pytest.raises(ValueError):
            interferer_count_bound(3.0, 0.01, 1.0, -1.0)
