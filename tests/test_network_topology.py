"""Tests for repro.network.topology."""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.network.topology import (
    chain_topology,
    clustered_topology,
    exponential_length_topology,
    grid_topology,
    paper_topology,
    random_rates_topology,
)


class TestPaperTopology:
    def test_count(self):
        assert len(paper_topology(50, seed=0)) == 50

    def test_senders_in_region(self):
        ls = paper_topology(200, seed=1)
        assert Region.square(500.0).contains(ls.senders).all()

    def test_lengths_in_range(self):
        ls = paper_topology(200, seed=2)
        assert (ls.lengths >= 5.0 - 1e-9).all()
        assert (ls.lengths <= 20.0 + 1e-9).all()

    def test_unit_rates(self):
        ls = paper_topology(10, seed=0)
        np.testing.assert_array_equal(ls.rates, 1.0)

    def test_reproducible(self):
        a = paper_topology(20, seed=9)
        b = paper_topology(20, seed=9)
        np.testing.assert_array_equal(a.senders, b.senders)
        np.testing.assert_array_equal(a.receivers, b.receivers)

    def test_custom_params(self):
        ls = paper_topology(30, region_side=100.0, min_length=1.0, max_length=2.0, rate=5.0, seed=0)
        assert Region.square(100.0).contains(ls.senders).all()
        assert (ls.lengths <= 2.0 + 1e-9).all()
        np.testing.assert_array_equal(ls.rates, 5.0)

    def test_zero_links(self):
        assert len(paper_topology(0, seed=0)) == 0

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            paper_topology(5, min_length=10.0, max_length=5.0)
        with pytest.raises(ValueError):
            paper_topology(-1)

    def test_directions_vary(self):
        ls = paper_topology(100, seed=3)
        offsets = ls.receivers - ls.senders
        angles = np.arctan2(offsets[:, 1], offsets[:, 0])
        # Random directions should cover all four quadrants.
        assert (angles > np.pi / 2).any() and (angles < -np.pi / 2).any()


class TestClusteredTopology:
    def test_count_and_region(self):
        ls = clustered_topology(100, seed=0)
        assert len(ls) == 100
        assert Region.square(500.0).contains(ls.senders).all()

    def test_clustering_tighter_than_uniform(self):
        clustered = clustered_topology(300, n_clusters=3, cluster_std=10.0, seed=1)
        uniform = paper_topology(300, seed=1)
        # Mean nearest-neighbour distance shrinks under clustering.
        def mean_nnd(ls):
            from repro.geometry.distance import pairwise_distances

            d = pairwise_distances(ls.senders)
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        assert mean_nnd(clustered) < mean_nnd(uniform)

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            clustered_topology(10, n_clusters=0)


class TestGridTopology:
    def test_count(self):
        assert len(grid_topology(4)) == 16

    def test_deterministic_without_jitter(self):
        a = grid_topology(3, seed=0)
        b = grid_topology(3, seed=99)
        np.testing.assert_array_equal(a.senders, b.senders)

    def test_spacing(self):
        ls = grid_topology(2, spacing=50.0)
        from repro.geometry.distance import pairwise_distances

        d = pairwise_distances(ls.senders)
        np.fill_diagonal(d, np.inf)
        assert d.min() == pytest.approx(50.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_topology(0)


class TestChainTopology:
    def test_collinear(self):
        ls = chain_topology(5)
        assert (ls.senders[:, 1] == 0).all()
        assert (ls.receivers[:, 1] == 0).all()

    def test_lengths(self):
        ls = chain_topology(4, link_length=7.0)
        np.testing.assert_allclose(ls.lengths, 7.0)

    def test_hop(self):
        ls = chain_topology(3, hop=25.0)
        np.testing.assert_allclose(np.diff(ls.senders[:, 0]), 25.0)

    def test_empty(self):
        assert len(chain_topology(0)) == 0


class TestExponentialLengthTopology:
    def test_lengths_are_powers(self):
        ls = exponential_length_topology(200, base_length=2.0, growth=2.0, seed=0)
        logs = np.log2(ls.lengths / 2.0)
        np.testing.assert_allclose(logs, np.round(logs), atol=1e-9)

    def test_diversity_grows(self):
        from repro.network.diversity import length_diversity

        narrow = paper_topology(200, seed=0)
        wide = exponential_length_topology(200, n_magnitudes=8, seed=0)
        assert length_diversity(wide) > length_diversity(narrow)

    def test_invalid_growth(self):
        with pytest.raises(ValueError):
            exponential_length_topology(10, growth=1.0)


class TestPppTopology:
    def test_count_is_poisson_around_mean(self):
        from repro.network.topology import ppp_topology

        counts = [len(ppp_topology(1e-3, seed=s)) for s in range(30)]
        # intensity * area = 250; Poisson sd ~ 16.
        assert 180 < np.mean(counts) < 320

    def test_reproducible(self):
        from repro.network.topology import ppp_topology

        a = ppp_topology(5e-4, seed=1)
        b = ppp_topology(5e-4, seed=1)
        assert len(a) == len(b)
        np.testing.assert_array_equal(a.senders, b.senders)

    def test_senders_in_region(self):
        from repro.network.topology import ppp_topology

        ls = ppp_topology(1e-3, region_side=200.0, seed=2)
        assert Region.square(200.0).contains(ls.senders).all()

    def test_invalid_intensity(self):
        from repro.network.topology import ppp_topology

        with pytest.raises(ValueError):
            ppp_topology(0.0)


class TestRandomRates:
    def test_rates_in_range(self):
        ls = random_rates_topology(100, rate_low=2.0, rate_high=9.0, seed=0)
        assert (ls.rates >= 2.0).all() and (ls.rates <= 9.0).all()
        assert not ls.has_uniform_rates

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            random_rates_topology(10, rate_low=5.0, rate_high=1.0)
