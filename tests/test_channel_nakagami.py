"""Tests for the Nakagami-m fading extension."""

import numpy as np
import pytest

from repro.channel.nakagami import (
    NakagamiChannel,
    fading_severity_sweep,
    sample_nakagami_trials,
    sample_received_power_nakagami,
    success_probability_nakagami,
)


def ring_distances(n=4, own=10.0, cross=60.0):
    d = np.full((n, n), cross)
    np.fill_diagonal(d, own)
    return d


class TestSampler:
    def test_mean_matches_pathloss(self):
        for m in (0.5, 1.0, 4.0):
            s = sample_received_power_nakagami(10.0, 3.0, m, size=200_000, seed=0)
            assert np.mean(s) == pytest.approx(10.0**-3, rel=0.02)

    def test_m1_is_exponential(self):
        """Rayleigh special case: CDF at the mean is 1 - 1/e."""
        s = sample_received_power_nakagami(10.0, 3.0, 1.0, size=200_000, seed=1)
        assert np.mean(s <= 10.0**-3) == pytest.approx(1 - np.exp(-1), abs=0.01)

    def test_variance_shrinks_with_m(self):
        """Var = mean^2 / m: larger m = milder fading."""
        v = {}
        for m in (1.0, 4.0):
            s = sample_received_power_nakagami(10.0, 3.0, m, size=100_000, seed=2)
            v[m] = np.var(s)
        assert v[4.0] < v[1.0] / 2
        assert v[1.0] == pytest.approx((10.0**-3) ** 2, rel=0.05)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            sample_received_power_nakagami(10.0, 3.0, 0.0)

    def test_trials_shape(self):
        z = sample_nakagami_trials(ring_distances(), np.array([0, 2]), 3.0, 2.0, 7, seed=0)
        assert z.shape == (7, 2, 2)


class TestSuccessProbability:
    def test_m1_matches_rayleigh_closed_form(self):
        from repro.channel.rayleigh import success_probability

        d = ring_distances()
        active = np.arange(4)
        exact = success_probability(d, active, 3.0, 1.0)
        mc = success_probability_nakagami(
            d, active, 3.0, 1.0, m=1.0, n_trials=100_000, seed=3
        )
        np.testing.assert_allclose(mc, exact, atol=0.01)

    def test_larger_m_helps_feasible_schedules(self):
        """Low interference: milder fading raises success probability."""
        d = ring_distances(own=10.0, cross=200.0)
        active = np.arange(4)
        p1 = success_probability_nakagami(d, active, 3.0, 1.0, m=1.0, n_trials=50_000, seed=4)
        p8 = success_probability_nakagami(d, active, 3.0, 1.0, m=8.0, n_trials=50_000, seed=5)
        assert (p8 >= p1 - 0.002).all()
        assert p8.mean() > p1.mean()

    def test_deterministic_limit(self):
        """Huge m approaches the deterministic success indicator."""
        from repro.channel.deterministic import deterministic_success

        d = ring_distances(own=10.0, cross=40.0)
        active = np.arange(4)
        det = deterministic_success(d, active, 3.0, 1.0)
        p = success_probability_nakagami(d, active, 3.0, 1.0, m=200.0, n_trials=30_000, seed=6)
        np.testing.assert_allclose(p, det.astype(float), atol=0.05)

    def test_empty_active(self):
        p = success_probability_nakagami(
            ring_distances(), np.zeros(0, dtype=int), 3.0, 1.0, m=2.0, n_trials=10
        )
        assert p.size == 0


class TestChannelFacade:
    def test_validation(self):
        with pytest.raises(ValueError):
            NakagamiChannel(alpha=3.0, m=-1.0)

    def test_facade_delegates(self):
        ch = NakagamiChannel(alpha=3.0, m=2.0)
        d = ring_distances()
        p = ch.success_probability(d, np.arange(4), 1.0, n_trials=5000, seed=0)
        assert p.shape == (4,)
        assert ((0 <= p) & (p <= 1)).all()


class TestSeveritySweep:
    def test_rayleigh_feasible_schedule_improves_with_m(self):
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule
        from repro.network.topology import paper_topology

        p = FadingRLS(links=paper_topology(100, seed=0))
        s = rle_schedule(p)
        sweep = fading_severity_sweep(p, s.active, m_values=(1.0, 4.0), n_trials=20_000, seed=1)
        assert sweep[4.0] >= sweep[1.0] - 0.003
        assert sweep[1.0] >= 1 - p.eps - 0.01  # Rayleigh contract
