"""Tests for the markdown report generator."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ShapeCheck, generate_report


@pytest.fixture(scope="module")
def report_text():
    cfg = ExperimentConfig(
        n_links_sweep=(60, 120),
        alpha_sweep=(2.5, 4.0),
        n_links_fixed=120,
        n_repetitions=2,
        n_trials=150,
    )
    return generate_report(cfg)


class TestGenerateReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# Evaluation report",
            "## Shape checks",
            "## Fig. 5(a)",
            "## Fig. 5(b)",
            "## Fig. 6(a)",
            "## Fig. 6(b)",
        ):
            assert heading in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        table_lines = [l for l in lines if l.startswith("|")]
        assert table_lines
        # Every table row has a consistent pipe structure with its header.
        for line in table_lines:
            assert line.endswith("|")

    def test_shape_checks_reproduce(self, report_text):
        """On a seeded config the headline claims must all reproduce."""
        section = report_text.split("## Shape checks")[1].split("## Fig")[0]
        assert "| NO |" not in section
        assert section.count("| yes |") >= 5

    def test_config_echoed(self, report_text):
        assert "eps=0.01" in report_text
        assert "root seed 2017" in report_text

    def test_cli_report_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.config import ExperimentConfig as EC

        tiny = EC(
            n_links_sweep=(30,),
            alpha_sweep=(2.5, 3.5),
            n_links_fixed=30,
            n_repetitions=1,
            n_trials=30,
        )
        monkeypatch.setattr(EC, "small", lambda self: tiny)
        out_file = tmp_path / "report.md"
        assert main(["report", "--output", str(out_file)]) == 0
        assert "# Evaluation report" in out_file.read_text()


class TestShapeCheck:
    def test_dataclass(self):
        c = ShapeCheck(claim="x", holds=True)
        assert c.claim == "x" and c.holds
