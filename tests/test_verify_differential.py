"""Tests for the differential checks (repro.verify.differential)."""

import pytest

from repro.verify.differential import (
    CODE_ANALYTIC_MC,
    CODE_CACHE,
    DIFFERENTIAL_CHECKS,
    check_analytic_vs_montecarlo,
    check_batched_vs_streaming,
    check_cached_vs_certificate,
    check_exact_vs_ilp,
    check_serial_vs_parallel,
    check_with_params_cache_carry,
    register_differential,
)
from repro.verify.fuzz import FAMILIES, make_scenario
from repro.verify import cache as verify_cache  # noqa: F401  (registers cache-vs-fresh)
from repro.verify import channels  # noqa: F401  (registers channel-vs-rayleigh)


class TestRegistry:
    def test_all_checks_registered(self):
        assert set(DIFFERENTIAL_CHECKS) == {
            "exact-vs-ilp",
            "analytic-vs-montecarlo",
            "serial-vs-parallel",
            "cached-vs-certificate",
            "batched-vs-streaming",
            "with-params-cache-carry",
            "incremental-vs-scratch",
            "backend-vs-numpy",
            "channel-vs-rayleigh",
            "cache-vs-fresh",
            "service-vs-direct",
        }

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_differential("exact-vs-ilp")(lambda s: [])


class TestChecksPassOnSeededScenarios:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_exact_vs_ilp(self, family):
        assert check_exact_vs_ilp(make_scenario(family, 0, root_seed=0)) == []

    @pytest.mark.parametrize("family", ["paper", "degenerate-ring"])
    def test_analytic_vs_montecarlo(self, family):
        assert check_analytic_vs_montecarlo(make_scenario(family, 0, root_seed=0)) == []

    def test_serial_vs_parallel(self):
        assert check_serial_vs_parallel(make_scenario("paper", 0, root_seed=0)) == []

    @pytest.mark.parametrize("family", FAMILIES)
    def test_cached_vs_certificate(self, family):
        assert check_cached_vs_certificate(make_scenario(family, 0, root_seed=0)) == []

    def test_batched_vs_streaming(self):
        assert check_batched_vs_streaming(make_scenario("paper", 1, root_seed=0)) == []

    def test_with_params_cache_carry(self):
        assert check_with_params_cache_carry(make_scenario("paper", 1, root_seed=0)) == []


class TestFaultInjection:
    """The acceptance-criterion scenario: a perturbed cached interference
    matrix must be detected with a structured report naming the failing
    relation and reason code."""

    def test_cache_perturbation_detected(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        problem = scenario.problem
        # Corrupt one cached entry; the certificate recomputes from
        # coordinates and must disagree.
        f = problem.interference_matrix()
        f[3, 7] += 0.05
        mismatches = check_cached_vs_certificate(scenario)
        assert mismatches, "perturbed cache went undetected"
        m = mismatches[0]
        assert m.check == "cached-vs-certificate"
        assert m.code == CODE_CACHE
        assert m.details["link"] == 7
        assert m.details["cached"] == pytest.approx(m.details["recomputed"] + 0.05)

    def test_report_serializes(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        scenario.problem.interference_matrix()[3, 7] += 0.05
        m = check_cached_vs_certificate(scenario)[0]
        d = m.to_dict()
        assert d["code"] == CODE_CACHE
        assert d["scenario"] == scenario.name

    def test_analytic_mc_catches_probability_drift(self):
        # Corrupting F shifts the analytic probabilities but not the
        # geometry-driven Monte-Carlo draws: the 5-sigma bound must trip.
        scenario = make_scenario("dense-cluster", 0, root_seed=0)
        f = scenario.problem.interference_matrix()
        f[f > 0] *= 3.0
        mismatches = check_analytic_vs_montecarlo(scenario)
        assert mismatches
        assert all(m.code == CODE_ANALYTIC_MC for m in mismatches)

    def test_stream_check_is_bitwise(self):
        # Same seed, different chunking: passing proves bit-identity on
        # the real path; the check would flag any layout change.
        scenario = make_scenario("collinear-gadget", 0, root_seed=0)
        assert check_batched_vs_streaming(scenario) == []
