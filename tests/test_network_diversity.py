"""Tests for repro.network.diversity (Definition 4.1)."""

import numpy as np
import pytest

from repro.network.diversity import (
    class_length_bound,
    length_classes,
    length_diversity,
    length_diversity_set,
    length_magnitudes,
)
from repro.network.links import LinkSet


def linkset_with_lengths(lengths):
    lengths = np.asarray(lengths, dtype=float)
    n = lengths.shape[0]
    senders = np.column_stack([np.arange(n) * 1000.0, np.zeros(n)])
    receivers = senders + np.column_stack([lengths, np.zeros(n)])
    return LinkSet(senders=senders, receivers=receivers)


class TestLengthMagnitudes:
    def test_uniform_lengths_magnitude_zero(self):
        np.testing.assert_array_equal(length_magnitudes(np.array([5.0, 5.0, 5.0])), 0)

    def test_doubling(self):
        mags = length_magnitudes(np.array([1.0, 2.0, 4.0, 8.0]))
        np.testing.assert_array_equal(mags, [0, 1, 2, 3])

    def test_interior_of_octave(self):
        mags = length_magnitudes(np.array([1.0, 1.5, 1.99, 2.01]))
        np.testing.assert_array_equal(mags, [0, 0, 0, 1])

    def test_power_of_two_boundary(self):
        # Exactly 2x the minimum belongs to magnitude 1 despite float noise.
        mags = length_magnitudes(np.array([3.0, 6.0]))
        np.testing.assert_array_equal(mags, [0, 1])

    def test_empty(self):
        assert length_magnitudes(np.zeros(0)).size == 0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            length_magnitudes(np.array([1.0, 0.0]))


class TestDiversity:
    def test_paper_range_is_two(self):
        # Lengths in [5, 20]: ratios up to 4 -> magnitudes {0, 1, (2)}.
        ls = linkset_with_lengths([5.0, 9.0, 11.0, 19.0])
        assert length_diversity_set(ls) == [0, 1]
        assert length_diversity(ls) == 2

    def test_single_link(self):
        ls = linkset_with_lengths([7.0])
        assert length_diversity(ls) == 1

    def test_gaps_in_magnitudes(self):
        ls = linkset_with_lengths([1.0, 100.0])
        # floor(log2(100)) = 6: magnitudes {0, 6}, diversity 2.
        assert length_diversity_set(ls) == [0, 6]
        assert length_diversity(ls) == 2

    def test_accepts_raw_array(self):
        assert length_diversity(np.array([1.0, 2.0, 4.0])) == 3

    def test_empty(self):
        assert length_diversity(np.zeros(0)) == 0


class TestLengthClasses:
    def test_one_sided_nested(self):
        ls = linkset_with_lengths([1.0, 2.0, 4.0])
        classes = length_classes(ls, two_sided=False)
        # Class h contains all links with magnitude <= h: nested growth.
        assert [len(c) for c in classes] == [1, 2, 3]
        for smaller, larger in zip(classes, classes[1:]):
            assert set(smaller) <= set(larger)

    def test_two_sided_partition(self):
        ls = linkset_with_lengths([1.0, 1.5, 2.0, 4.0])
        classes = length_classes(ls, two_sided=True)
        all_indices = np.concatenate(classes)
        assert sorted(all_indices.tolist()) == [0, 1, 2, 3]
        # Two-sided classes are disjoint.
        assert len(set(all_indices.tolist())) == 4

    def test_one_sided_largest_class_is_everything(self):
        ls = linkset_with_lengths([3.0, 5.0, 17.0, 29.0])
        classes = length_classes(ls, two_sided=False)
        assert len(classes[-1]) == 4

    def test_class_respects_length_bound(self):
        ls = linkset_with_lengths([2.0, 3.0, 7.0, 30.0])
        classes = length_classes(ls, two_sided=False)
        for h, idx in zip(length_diversity_set(ls), classes):
            bound = class_length_bound(ls, h)
            assert (ls.lengths[idx] < bound + 1e-9).all()


class TestClassLengthBound:
    def test_value(self):
        ls = linkset_with_lengths([4.0, 8.0])
        assert class_length_bound(ls, 0) == pytest.approx(8.0)
        assert class_length_bound(ls, 1) == pytest.approx(16.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            class_length_bound(LinkSet.empty(), 0)
