"""Tests for repro.geometry.grid (LDP's partition + colouring)."""

import numpy as np
import pytest

from repro.geometry.grid import GridPartition, four_coloring, ring_cell_count, ring_cells


class TestFourColoring:
    def test_pattern_2x2(self):
        cells = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        colors = four_coloring(cells)
        assert sorted(colors.tolist()) == [0, 1, 2, 3]

    def test_adjacent_differ(self):
        # Every edge-adjacent pair of cells must get different colours.
        for a in range(4):
            for b in range(4):
                c0 = four_coloring(np.array([[a, b]]))[0]
                for da, db in ((1, 0), (0, 1)):
                    c1 = four_coloring(np.array([[a + da, b + db]]))[0]
                    assert c0 != c1

    def test_same_color_even_offsets(self):
        c0 = four_coloring(np.array([[3, 5]]))[0]
        c1 = four_coloring(np.array([[5, 9]]))[0]  # offsets (2, 4): both even
        assert c0 == c1

    def test_negative_indices(self):
        # Colour must be stable across negative cells (plane tiling).
        assert four_coloring(np.array([[-2, -2]]))[0] == four_coloring(np.array([[0, 0]]))[0]

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            four_coloring(np.array([1, 2, 3]))


class TestGridPartition:
    def test_cell_of_basic(self):
        g = GridPartition(10.0)
        cells = g.cell_of([[5.0, 5.0], [15.0, 25.0], [-0.1, 0.0]])
        np.testing.assert_array_equal(cells, [[0, 0], [1, 2], [-1, 0]])

    def test_boundary_floor_semantics(self):
        g = GridPartition(10.0)
        np.testing.assert_array_equal(g.cell_of([[10.0, 0.0]]), [[1, 0]])

    def test_origin_shift(self):
        g = GridPartition(10.0, origin=(5.0, 5.0))
        np.testing.assert_array_equal(g.cell_of([[4.0, 6.0]]), [[-1, 0]])

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridPartition(0.0)

    def test_cell_center_roundtrip(self):
        g = GridPartition(4.0)
        centers = g.cell_center(np.array([[2, 3]]))
        np.testing.assert_allclose(centers, [[10.0, 14.0]])
        np.testing.assert_array_equal(g.cell_of(centers), [[2, 3]])

    def test_color_of_matches_cells(self):
        g = GridPartition(7.0)
        pts = np.array([[1.0, 1.0], [8.0, 1.0]])
        np.testing.assert_array_equal(g.color_of(pts), four_coloring(g.cell_of(pts)))

    def test_same_color_separation(self):
        g = GridPartition(10.0)
        # Same cell: zero separation bound.
        assert g.same_color_separation((0, 0), (0, 0)) == 0.0
        # Offset (2, 0): at least one empty cell between them.
        assert g.same_color_separation((0, 0), (2, 0)) == pytest.approx(10.0)
        assert g.same_color_separation((0, 0), (4, 2)) == pytest.approx(30.0)

    def test_same_color_separation_is_sound(self, rng):
        """Any two points in same-colour cells are at least the bound apart."""
        g = GridPartition(5.0)
        for _ in range(50):
            ca = tuple(rng.integers(-5, 5, 2))
            cb = tuple(rng.integers(-5, 5, 2))
            if (ca[0] - cb[0]) % 2 or (ca[1] - cb[1]) % 2:
                continue  # different colour
            pa = np.array(ca) * 5.0 + rng.uniform(0, 5.0, 2)
            pb = np.array(cb) * 5.0 + rng.uniform(0, 5.0, 2)
            bound = g.same_color_separation(ca, cb)
            assert np.linalg.norm(pa - pb) >= bound - 1e-9


class TestRingCells:
    def test_ring_zero(self):
        assert list(ring_cells((2, 3), 0)) == [(2, 3)]

    @pytest.mark.parametrize("q", [1, 2, 3, 5])
    def test_ring_count(self, q):
        cells = list(ring_cells((0, 0), q))
        assert len(cells) == ring_cell_count(q) == 8 * q
        assert len(set(cells)) == len(cells)  # no duplicates

    @pytest.mark.parametrize("q", [1, 2, 4])
    def test_ring_chebyshev_distance(self, q):
        for a, b in ring_cells((1, -1), q):
            assert max(abs(a - 1), abs(b + 1)) == q

    def test_rings_partition_square(self):
        # Rings 0..3 should exactly tile the 7x7 square around centre.
        cells = set()
        for q in range(4):
            cells.update(ring_cells((0, 0), q))
        assert cells == {(a, b) for a in range(-3, 4) for b in range(-3, 4)}

    def test_negative_q(self):
        with pytest.raises(ValueError):
            list(ring_cells((0, 0), -1))
        with pytest.raises(ValueError):
            ring_cell_count(-2)
