"""Tests for the zero-copy shared-memory fan-out (``repro.backend.sharedmem``).

Covers the arena lifecycle (create/attach/unlink, idempotent close,
leak guards), payload grouping in :func:`materialize_units`, bit-exact
equivalence of the sharedmem execution path with the plain numpy path
for every ``n_jobs``, and — chaos-marked — that killed workers never
leak a segment.
"""

import glob
import os

import numpy as np
import pytest

from repro.backend import sharedmem
from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.sim.parallel import build_units, execute_units
from repro.sim.runner import run_schedulers

WORKLOAD = TopologyWorkload(n_links=25)
SCHEDULERS = {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")}


def _leftover_segments():
    """Shared-memory segments from this module still on disk (Linux)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob(f"/dev/shm/rls{os.getpid() % 1000000}x*")


def _run(n_jobs, backend="sharedmem", policy=None):
    return run_schedulers(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=2,
        n_trials=40,
        root_seed=11,
        n_jobs=n_jobs,
        backend=backend,
        policy=policy,
    )


def _assert_identical(got, want):
    assert got.keys() == want.keys()
    for name in want:
        for a, b in zip(got[name].per_rep, want[name].per_rep):
            assert a.mean_failed == b.mean_failed
            assert a.mean_throughput == b.mean_throughput
            assert np.array_equal(a.per_link_success, b.per_link_success)
            assert np.array_equal(a.active_indices, b.active_indices)


class TestShmArena:
    def test_share_and_attach_roundtrip(self):
        rng = np.random.default_rng(0)
        arr = rng.uniform(size=(7, 7))
        with sharedmem.ShmArena() as arena:
            ref = arena.share(arr)
            got = sharedmem.attach(ref)
            np.testing.assert_array_equal(got, arr)
            assert not got.flags.writeable
            sharedmem.detach_all()
        assert _leftover_segments() == []

    def test_close_is_idempotent(self):
        arena = sharedmem.ShmArena()
        arena.share(np.ones(3))
        names = arena.segment_names()
        assert len(names) == 1
        arena.close()
        arena.close()
        assert arena.segment_names() == []
        assert _leftover_segments() == []

    def test_share_after_close_rejected(self):
        arena = sharedmem.ShmArena()
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.share(np.ones(2))

    def test_empty_array_shareable(self):
        with sharedmem.ShmArena() as arena:
            ref = arena.share(np.empty((0,), dtype=np.float64))
            got = sharedmem.attach(ref)
            assert got.shape == (0,)
            sharedmem.detach_all()

    def test_attach_cache_hit(self):
        with sharedmem.ShmArena() as arena:
            ref = arena.share(np.arange(5.0))
            first = sharedmem.attach(ref)
            second = sharedmem.attach(ref)
            assert first is second
            sharedmem.detach_all()

    def test_attach_cache_eviction_bounded(self):
        with sharedmem.ShmArena() as arena:
            refs = [
                arena.share(np.full(4, float(i)))
                for i in range(sharedmem._ATTACH_CACHE_MAX + 8)
            ]
            for ref in refs:
                sharedmem.attach(ref)
            assert len(sharedmem._ATTACHED) <= sharedmem._ATTACH_CACHE_MAX
            sharedmem.detach_all()


class TestMaterializeUnits:
    def _units(self, reps=2):
        return build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=reps,
            n_trials=10,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=11,
            backend="sharedmem",
        )

    def test_one_payload_per_repetition(self):
        units = self._units(reps=3)
        shared, arena = sharedmem.materialize_units(units)
        try:
            assert len(shared) == len(units)
            payloads = {id(u.payload) for u in shared}
            assert len(payloads) == 3  # grouped by rep, shared across schedulers
        finally:
            arena.close()
        assert _leftover_segments() == []

    def test_shared_units_execute(self):
        units = self._units(reps=1)
        shared, arena = sharedmem.materialize_units(units)
        try:
            result = sharedmem.execute_shared_unit(shared[0])
            assert result.n_trials == 10
        finally:
            arena.close()
            sharedmem.detach_all()


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def numpy_serial(self):
        return _run(1, backend="numpy")

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_matches_numpy_serial(self, numpy_serial, n_jobs):
        _assert_identical(_run(n_jobs), numpy_serial)
        assert _leftover_segments() == []

    def test_execute_units_cleans_arena_on_success(self):
        units = build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=1,
            n_trials=10,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=11,
            backend="sharedmem",
        )
        execute_units(units, n_jobs=1)
        assert _leftover_segments() == []
        assert len(sharedmem._LIVE_ARENAS) == 0


@pytest.mark.chaos
class TestCrashNeverLeaksSegments:
    def test_killed_worker_leaves_no_segment(self):
        # `die` kills the worker outright mid-unit (BrokenProcessPool);
        # the resilient executor rebuilds the pool, the rerun is
        # bit-identical, and the parent's arena still unlinks every
        # segment — nothing may survive in /dev/shm.
        from repro.faults import FaultPlan, FaultSpec, injected
        from repro.sim.parallel import unit_key
        from repro.sim.resilient import RetryPolicy

        units = build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=2,
            n_trials=40,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=11,
        )
        keys = [unit_key(u) for u in units]
        plan = FaultPlan({keys[0]: FaultSpec("die"), keys[2]: FaultSpec("crash")})
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        clean = _run(1, backend="numpy")
        with injected(plan):
            chaotic = _run(2, policy=policy)
        _assert_identical(chaotic, clean)
        assert _leftover_segments() == []
        assert len(sharedmem._LIVE_ARENAS) == 0
