"""White-box tests for LDP's internals (per-square pick, sizing)."""

import numpy as np

from repro.core.ldp import _pick_per_square


class TestPickPerSquare:
    def test_single_winner_per_cell(self):
        cells = np.array([[0, 0], [0, 0], [1, 0]])
        rates = np.array([1.0, 5.0, 2.0])
        idx = np.array([10, 11, 12])
        out = _pick_per_square(cells, rates, idx)
        assert sorted(out.tolist()) == [11, 12]  # max-rate in (0,0) is 11

    def test_tie_breaks_to_lower_index(self):
        cells = np.array([[0, 0], [0, 0]])
        rates = np.array([3.0, 3.0])
        idx = np.array([7, 4])
        out = _pick_per_square(cells, rates, idx)
        assert out.tolist() == [4]

    def test_empty(self):
        out = _pick_per_square(
            np.zeros((0, 2), dtype=np.int64), np.zeros(0), np.zeros(0, dtype=np.int64)
        )
        assert out.size == 0

    def test_negative_cells_handled(self):
        cells = np.array([[-1, -1], [-1, -1], [-1, 0]])
        rates = np.array([1.0, 2.0, 1.0])
        idx = np.array([0, 1, 2])
        out = _pick_per_square(cells, rates, idx)
        assert sorted(out.tolist()) == [1, 2]

    def test_all_distinct_cells_all_kept(self):
        rng = np.random.default_rng(0)
        cells = np.column_stack([np.arange(10), np.zeros(10, dtype=np.int64)])
        rates = rng.uniform(1, 5, 10)
        idx = np.arange(10)
        out = _pick_per_square(cells, rates, idx)
        assert sorted(out.tolist()) == list(range(10))

    def test_many_per_cell_keeps_global_max(self):
        rng = np.random.default_rng(1)
        n = 50
        cells = np.zeros((n, 2), dtype=np.int64)  # everyone in one cell
        rates = rng.uniform(0, 10, n)
        idx = np.arange(n)
        out = _pick_per_square(cells, rates, idx)
        assert out.tolist() == [int(np.argmax(rates))]


class TestLdpSizingMonotonicity:
    def test_candidate_count_grows_with_diversity(self):
        """More magnitudes -> more (class, colour) candidates."""
        from repro.core.ldp import ldp_candidates
        from repro.core.problem import FadingRLS
        from repro.network.topology import exponential_length_topology, paper_topology

        narrow = FadingRLS(links=paper_topology(100, seed=0))
        wide = FadingRLS(links=exponential_length_topology(100, n_magnitudes=6, seed=0))
        assert len(ldp_candidates(wide)) > len(ldp_candidates(narrow))

    def test_rigorous_vs_paper_sizing_direction(self):
        """At alpha = 3 the rigorous beta is slightly smaller (exact ring
        sum beats the paper's loose closed form); at alpha = 4.5 it is
        larger (the corner-geometry gap dominates)."""
        from repro.core.bounds import ldp_beta, ldp_rigorous_beta
        from repro.core.problem import gamma_epsilon

        g = gamma_epsilon(0.01)
        assert ldp_rigorous_beta(3.0, 1.0, g) < ldp_beta(3.0, 1.0, g)
        assert ldp_rigorous_beta(4.5, 1.0, g) > ldp_beta(4.5, 1.0, g)
