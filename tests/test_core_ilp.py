"""Tests for the Eq. 20-22 ILP construction."""

import numpy as np
import pytest

from repro.core.ilp import big_m, build_ilp, check_ilp_solution
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestBigM:
    def test_is_max_column_sum(self, paper_problem):
        f = paper_problem.interference_matrix()
        assert big_m(paper_problem) == pytest.approx(f.sum(axis=0).max())

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert big_m(p) == 1.0


class TestBuildIlp:
    def test_shapes(self, paper_problem):
        data = build_ilp(paper_problem)
        n = paper_problem.n_links
        assert data.objective.shape == (n,)
        assert data.constraint_matrix.shape == (n, n)
        assert data.upper_bounds.shape == (n,)
        assert data.n_vars == n

    def test_constraint_matrix_structure(self, tight_problem):
        data = build_ilp(tight_problem)
        f = tight_problem.interference_matrix()
        np.testing.assert_allclose(
            data.constraint_matrix, f.T + data.m * np.eye(3)
        )

    def test_small_m_rejected(self, tight_problem):
        with pytest.raises(ValueError, match="big-M"):
            build_ilp(tight_problem, m=1e-6)

    def test_custom_large_m_accepted(self, tight_problem):
        data = build_ilp(tight_problem, m=1e6)
        assert data.m == 1e6


class TestEncodingEquivalence:
    """The pinning test: Eq. 20-22 feasibility == Corollary 3.1 feasibility."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_subsets_agree(self, seed):
        links = paper_topology(8, region_side=100, seed=seed)
        p = FadingRLS(links=links)
        n = len(links)
        for bits in range(1 << n):
            x = np.array([(bits >> i) & 1 for i in range(n)], dtype=float)
            by_ilp = check_ilp_solution(p, x)
            by_cor31 = p.is_feasible(np.flatnonzero(x == 1))
            assert by_ilp == by_cor31, bits

    def test_inactive_links_unconstrained(self, tight_problem):
        """Big-M must deactivate constraints of unscheduled links."""
        # Empty and singleton schedules always pass, even when the full
        # set is wildly infeasible.
        assert check_ilp_solution(tight_problem, np.zeros(3))
        for i in range(3):
            x = np.zeros(3)
            x[i] = 1.0
            assert check_ilp_solution(tight_problem, x)

    def test_nonbinary_rejected(self, tight_problem):
        with pytest.raises(ValueError):
            check_ilp_solution(tight_problem, np.array([0.5, 0.0, 0.0]))

    def test_wrong_length_rejected(self, tight_problem):
        with pytest.raises(ValueError):
            check_ilp_solution(tight_problem, np.zeros(5))
