"""Tests for repro.channel.rayleigh — the paper's channel law.

Includes the key validation of Theorem 3.1: the closed-form success
probability must match the Monte-Carlo frequency of ``SINR >= gamma_th``
under exponential fading.
"""

import numpy as np
import pytest

from repro.channel.rayleigh import (
    RayleighChannel,
    received_power_cdf,
    sample_received_power,
    success_probability,
)


class TestReceivedPowerCdf:
    def test_zero_at_origin(self):
        assert received_power_cdf(0.0, distance=10.0, alpha=3.0) == 0.0

    def test_negative_is_zero(self):
        assert received_power_cdf(-1.0, distance=10.0, alpha=3.0) == 0.0

    def test_median(self):
        # Exponential median = mean * ln 2.
        mean = 10.0**-3
        assert received_power_cdf(mean * np.log(2), 10.0, 3.0) == pytest.approx(0.5)

    def test_limits_to_one(self):
        assert received_power_cdf(1e9, 10.0, 3.0) == pytest.approx(1.0)

    def test_monotone(self):
        x = np.linspace(0, 1e-2, 100)
        c = received_power_cdf(x, 10.0, 3.0)
        assert (np.diff(c) >= 0).all()


class TestSampleReceivedPower:
    def test_mean_matches_pathloss(self):
        s = sample_received_power(10.0, alpha=3.0, size=200_000, seed=0)
        assert np.mean(s) == pytest.approx(10.0**-3, rel=0.02)

    def test_shape_with_matrix(self):
        d = np.full((3, 3), 10.0)
        s = sample_received_power(d, alpha=3.0, size=7, seed=0)
        assert s.shape == (7, 3, 3)

    def test_nonnegative(self):
        s = sample_received_power(5.0, alpha=3.0, size=1000, seed=1)
        assert (s >= 0).all()

    def test_reproducible(self):
        a = sample_received_power(5.0, alpha=3.0, size=10, seed=3)
        b = sample_received_power(5.0, alpha=3.0, size=10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_exponential_distribution(self):
        # CDF at the mean should be 1 - 1/e.
        s = sample_received_power(10.0, alpha=3.0, size=100_000, seed=2)
        frac = np.mean(s <= 10.0**-3)
        assert frac == pytest.approx(1 - np.exp(-1), abs=0.01)


def two_link_distances(own=10.0, cross=50.0):
    return np.array([[own, cross], [cross, own]])


class TestSuccessProbability:
    def test_closed_form_two_links(self):
        d = two_link_distances()
        p = success_probability(d, np.array([0, 1]), alpha=3.0, gamma_th=1.0)
        expected = 1.0 / (1.0 + (10.0 / 50.0) ** 3)
        np.testing.assert_allclose(p, expected)

    def test_single_link_certain(self):
        d = two_link_distances()
        p = success_probability(d, np.array([0]), alpha=3.0, gamma_th=1.0)
        np.testing.assert_allclose(p, 1.0)

    def test_log_mode(self):
        d = two_link_distances()
        p = success_probability(d, np.array([0, 1]), alpha=3.0, gamma_th=1.0)
        lp = success_probability(d, np.array([0, 1]), alpha=3.0, gamma_th=1.0, log=True)
        np.testing.assert_allclose(np.exp(lp), p)

    def test_more_interferers_lower_probability(self):
        n = 3
        d = np.full((n, n), 50.0)
        np.fill_diagonal(d, 10.0)
        p2 = success_probability(d[:2, :2], np.array([0, 1]), 3.0, 1.0)
        p3 = success_probability(d, np.array([0, 1, 2]), 3.0, 1.0)
        assert p3[0] < p2[0]

    def test_higher_threshold_lower_probability(self):
        d = two_link_distances()
        p1 = success_probability(d, np.array([0, 1]), 3.0, gamma_th=0.5)
        p2 = success_probability(d, np.array([0, 1]), 3.0, gamma_th=2.0)
        assert (p2 < p1).all()

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            success_probability(np.ones((2, 3)), np.array([0]), 3.0, 1.0)

    def test_theorem31_matches_monte_carlo(self):
        """The headline check: Thm 3.1 closed form vs empirical fading."""
        rng = np.random.default_rng(7)
        n = 4
        # Random geometry with moderate interference.
        senders = rng.uniform(0, 60, size=(n, 2))
        receivers = senders + rng.uniform(-10, 10, size=(n, 2))
        from repro.geometry.distance import cross_distances

        d = cross_distances(senders, receivers)
        d = np.maximum(d, 1.0)  # avoid degenerate zero distances
        active = np.arange(n)
        p_formula = success_probability(d, active, alpha=3.0, gamma_th=1.0)

        trials = 200_000
        means = d**-3.0
        z = rng.exponential(1.0, size=(trials, n, n)) * means
        signal = np.diagonal(z, axis1=1, axis2=2)
        interference = z.sum(axis=1) - signal
        empirical = np.mean(signal / interference >= 1.0, axis=0)
        np.testing.assert_allclose(empirical, p_formula, atol=0.005)


class TestLaplaceTransformIdentity:
    """Theorem 3.1's derivation check: the product closed form equals
    the direct numerical evaluation of Eq. 12's integral
    ``int_0^inf e^{-gamma z / mu_j} f_I(z) dz`` where the interference
    density is estimated from samples (smoothed Monte-Carlo integral).
    """

    def test_product_equals_integral(self):
        rng = np.random.default_rng(11)
        # Victim: own mean mu; two interferers with means m1, m2.
        mu, m1, m2, gamma = 1.0, 0.3, 0.7, 1.3
        # Closed form: prod 1/(1 + gamma * m_i / mu).
        closed = 1.0 / ((1 + gamma * m1 / mu) * (1 + gamma * m2 / mu))
        # Direct expectation E[e^{-gamma I / mu}] over sampled interference.
        samples = rng.exponential(m1, 400_000) + rng.exponential(m2, 400_000)
        empirical = np.mean(np.exp(-gamma * samples / mu))
        assert empirical == pytest.approx(closed, rel=0.01)

    def test_exponential_laplace_transform(self):
        """L_Exp(1/mu)(nu) = 1 / (1 + mu nu), the Eq. 13 building block."""
        rng = np.random.default_rng(12)
        mu, nu = 0.4, 2.5
        samples = rng.exponential(mu, 400_000)
        empirical = np.mean(np.exp(-nu * samples))
        assert empirical == pytest.approx(1.0 / (1.0 + mu * nu), rel=0.01)


class TestRayleighChannel:
    def test_facade_consistency(self):
        ch = RayleighChannel(alpha=3.0)
        d = two_link_distances()
        np.testing.assert_allclose(
            ch.success_probability(d, np.array([0, 1]), gamma_th=1.0),
            success_probability(d, np.array([0, 1]), 3.0, 1.0),
        )

    def test_mean_power(self):
        ch = RayleighChannel(alpha=2.0, power=3.0)
        assert ch.mean_power(2.0) == pytest.approx(0.75)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RayleighChannel(alpha=-1.0)
        with pytest.raises(ValueError):
            RayleighChannel(alpha=3.0, power=0.0)

    def test_sample_shape(self):
        ch = RayleighChannel(alpha=3.0)
        assert np.asarray(ch.sample(10.0, size=5, seed=0)).shape == (5,)
