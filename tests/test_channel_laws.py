"""The pluggable channel-law interface (`repro.channel.laws`).

Registry/spec contracts, the chunked RNG-stream contract for every
registered law, the exact Rayleigh limits, and the import surface of
``repro.channel`` (docs/CHANNELS.md).
"""

import numpy as np
import pytest

import repro.channel as channel_pkg
from repro.channel.laws import (
    CHANNEL_LAWS,
    ChannelLaw,
    DeterministicLaw,
    NakagamiLaw,
    RayleighLaw,
    ShadowingLaw,
    channel_law_names,
    get_channel_law,
    register_channel_law,
)
from repro.channel.sampling import (
    fading_means,
    iter_fading_trials,
    sample_fading_trials,
)
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology

ALPHA = 3.0


@pytest.fixture
def problem():
    return FadingRLS(links=paper_topology(8, seed=11), alpha=ALPHA)


@pytest.fixture
def geometry(problem):
    d = problem.distances()
    active = np.array([0, 2, 3, 5])
    return d, active


ALL_SPECS = (
    "rayleigh",
    "nakagami",
    "nakagami:m=2",
    "nakagami:m=0.5",
    "shadowing",
    "shadowing:sigma_db=4",
    "shadowing:sigma_db=4,static=true",
    "shadowing:sigma_db=0",
    "deterministic",
)


class TestRegistry:
    def test_registered_names(self):
        assert channel_law_names() == (
            "deterministic",
            "nakagami",
            "rayleigh",
            "shadowing",
        )
        assert set(CHANNEL_LAWS) == set(channel_law_names())

    def test_none_is_rayleigh(self):
        law = get_channel_law(None)
        assert isinstance(law, RayleighLaw)
        assert law.spec == "rayleigh"

    def test_instance_passthrough(self):
        law = NakagamiLaw(m=3.0)
        assert get_channel_law(law) is law

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown channel law 'bogus'"):
            get_channel_law("bogus")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="bad parameters for channel law"):
            get_channel_law("nakagami:k=2")

    def test_bad_param_value_rejected(self):
        with pytest.raises(ValueError):
            get_channel_law("nakagami:m=-1")
        with pytest.raises(ValueError):
            get_channel_law("shadowing:sigma_db=-3")

    def test_duplicate_registration_rejected(self):
        class ImpostorLaw(RayleighLaw):
            name = "rayleigh"

        with pytest.raises(ValueError, match="already registered"):
            register_channel_law(ImpostorLaw)
        # Re-registering the *same* class is an idempotent no-op.
        assert register_channel_law(RayleighLaw) is RayleighLaw

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_spec_round_trips(self, spec):
        law = get_channel_law(spec)
        again = get_channel_law(law.spec)
        assert again == law
        assert again.spec == law.spec

    def test_canonical_forms(self):
        assert get_channel_law("nakagami").spec == "nakagami:m=1"
        assert get_channel_law("nakagami:m=2.0").spec == "nakagami:m=2"
        assert (
            get_channel_law("shadowing:sigma_db=6").spec
            == "shadowing:sigma_db=6,static=false"
        )
        assert (
            get_channel_law("shadowing:sigma_db=4,static=yes").spec
            == "shadowing:sigma_db=4,static=true"
        )
        assert get_channel_law("deterministic").spec == "deterministic"

    def test_closed_form_flags(self):
        assert get_channel_law("rayleigh").has_closed_form
        assert get_channel_law("nakagami:m=1").has_closed_form
        assert not get_channel_law("nakagami:m=2").has_closed_form
        assert get_channel_law("shadowing:sigma_db=0").has_closed_form
        assert not get_channel_law("shadowing:sigma_db=6").has_closed_form
        assert get_channel_law("deterministic").has_closed_form


class TestClosedForms:
    def test_rayleigh_matches_problem(self, problem):
        active = np.array([0, 1, 4])
        law = get_channel_law("rayleigh")
        got = law.success_probability(problem, active)
        want = problem.success_probabilities(active)[np.sort(active)]
        np.testing.assert_array_equal(got, want)

    def test_mc_only_laws_return_none(self, problem):
        active = np.array([0, 1])
        assert get_channel_law("nakagami:m=2").success_probability(problem, active) is None
        assert (
            get_channel_law("shadowing:sigma_db=6").success_probability(problem, active)
            is None
        )

    def test_deterministic_is_zero_one(self, problem):
        active = np.array([0, 1, 2, 3])
        got = DeterministicLaw().success_probability(problem, active)
        assert set(np.unique(got)) <= {0.0, 1.0}


class TestStreamContract:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_chunk_invariance(self, geometry, spec):
        d, active = geometry
        law = get_channel_law(spec)
        batched = sample_fading_trials(d, active, ALPHA, 23, seed=5, law=law)
        streamed = np.concatenate(
            list(
                iter_fading_trials(
                    d, active, ALPHA, 23, seed=5, chunk_trials=7, law=law
                )
            )
        )
        np.testing.assert_array_equal(batched, streamed)

    def test_rayleigh_law_matches_default_path(self, geometry):
        d, active = geometry
        default = sample_fading_trials(d, active, ALPHA, 16, seed=9)
        explicit = sample_fading_trials(
            d, active, ALPHA, 16, seed=9, law="rayleigh"
        )
        np.testing.assert_array_equal(default, explicit)

    def test_shadowing_zero_recovers_rayleigh_bits(self, geometry):
        d, active = geometry
        rayleigh = sample_fading_trials(d, active, ALPHA, 16, seed=13)
        shadow0 = sample_fading_trials(
            d, active, ALPHA, 16, seed=13, law="shadowing:sigma_db=0"
        )
        np.testing.assert_array_equal(rayleigh, shadow0)

    def test_deterministic_consumes_no_rng(self, geometry):
        d, active = geometry
        a = sample_fading_trials(d, active, ALPHA, 4, seed=1, law="deterministic")
        b = sample_fading_trials(d, active, ALPHA, 4, seed=999, law="deterministic")
        np.testing.assert_array_equal(a, b)
        _, means = fading_means(d, active, ALPHA)
        np.testing.assert_array_equal(a[0], means)

    def test_static_shadowing_freezes_shadow_draw(self, geometry):
        d, active = geometry
        z = sample_fading_trials(
            d, active, ALPHA, 50, seed=3, law="shadowing:sigma_db=8,static=true"
        )
        _, means = fading_means(d, active, ALPHA)
        mask = means > 0
        # Dividing out Rayleigh randomness per trial: the trial-averaged
        # log-factor has one shared shadowing component; with a fresh
        # shadow per trial the per-pair spread across trials would be
        # much larger.  Just check samples stay positive and finite with
        # the frozen draw, and that two seeds give different factors.
        assert np.isfinite(z[:, mask]).all() and (z[:, mask] > 0).all()
        z2 = sample_fading_trials(
            d, active, ALPHA, 50, seed=4, law="shadowing:sigma_db=8,static=true"
        )
        assert not np.array_equal(z, z2)

    @pytest.mark.parametrize("spec", ("nakagami:m=4", "shadowing:sigma_db=5"))
    def test_mean_preserved(self, geometry, spec):
        d, active = geometry
        law = get_channel_law(spec)
        z = sample_fading_trials(d, active, ALPHA, 4000, seed=7, law=law)
        _, means = fading_means(d, active, ALPHA)
        mask = means > 0
        ratio = z[:, mask].mean(axis=0) / means[mask]
        assert np.all(np.abs(ratio - 1.0) < 0.25)


class TestImportSurface:
    """Satellite: the laws are exported from ``repro.channel``."""

    def test_all_names_resolve(self):
        for name in channel_pkg.__all__:
            assert hasattr(channel_pkg, name), name

    def test_law_symbols_exported(self):
        for name in (
            "ChannelLaw",
            "RayleighLaw",
            "NakagamiLaw",
            "ShadowingLaw",
            "DeterministicLaw",
            "CHANNEL_LAWS",
            "get_channel_law",
            "register_channel_law",
            "channel_law_names",
            "sample_nakagami_trials",
            "success_probability_nakagami",
            "sample_shadowed_trials",
            "success_probability_shadowed",
        ):
            assert name in channel_pkg.__all__
            assert hasattr(channel_pkg, name)

    def test_package_import_matches_module(self):
        assert channel_pkg.NakagamiLaw is NakagamiLaw
        assert channel_pkg.ShadowingLaw is ShadowingLaw
        assert issubclass(channel_pkg.NakagamiLaw, ChannelLaw)
