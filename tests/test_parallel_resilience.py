"""Chaos tests for the fault-tolerant executor (`repro.sim.resilient`).

The headline guarantees under test:

- injected crashes, worker deaths, hangs, poisoned results, and memory
  blowouts are *recovered*: the map completes;
- recovered results are **bit-identical** to a fault-free run, for
  ``n_jobs`` in {1, 2, 4} — retries re-derive the same identity seeds;
- stable metric snapshots (volatile ``resilience.*`` names stripped)
  are byte-identical across fault histories and worker counts;
- a unit that exhausts its whole retry budget surfaces a structured
  :class:`UnitExecutionError` naming the unit.
"""

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.faults import FaultPlan, FaultSpec, injected
from repro.obs import metrics as obs_metrics
from repro.sim.parallel import build_units, unit_key
from repro.sim.resilient import (
    RetryPolicy,
    UnitExecutionError,
    resilient_map,
)
from repro.sim.runner import run_schedulers

pytestmark = pytest.mark.chaos

WORKLOAD = TopologyWorkload(n_links=25)
SCHEDULERS = {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")}
N_REPS = 2
N_TRIALS = 40


def _unit_keys():
    """The unit keys `run_schedulers` will derive for our tiny grid."""
    units = build_units(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=N_REPS,
        n_trials=N_TRIALS,
        alpha=3.0,
        gamma_th=1.0,
        eps=0.01,
        root_seed=11,
    )
    return [unit_key(u) for u in units]


def _run(n_jobs, policy=None):
    return run_schedulers(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=N_REPS,
        n_trials=N_TRIALS,
        root_seed=11,
        n_jobs=n_jobs,
        policy=policy,
    )


def _assert_identical(got, want):
    """Exact (bitwise) equality of two run_schedulers outputs."""
    assert got.keys() == want.keys()
    for name in want:
        for a, b in zip(got[name].per_rep, want[name].per_rep):
            assert a.algorithm == b.algorithm
            assert a.n_scheduled == b.n_scheduled
            assert a.mean_failed == b.mean_failed
            assert a.failed_stderr == b.failed_stderr
            assert a.mean_throughput == b.mean_throughput
            assert a.throughput_stderr == b.throughput_stderr
            assert a.scheduled_rate == b.scheduled_rate
            assert np.array_equal(a.per_link_success, b.per_link_success)
            assert np.array_equal(a.active_indices, b.active_indices)


@pytest.fixture(scope="module")
def clean_run():
    """The fault-free serial reference (legacy executor, no policy)."""
    return _run(1)


def _double(x):
    return 2 * x


class TestResilientMapBasics:
    def test_serial_map(self):
        assert resilient_map(_double, [1, 2, 3], n_jobs=1) == [2, 4, 6]

    def test_pool_map_preserves_order(self):
        assert resilient_map(_double, list(range(8)), n_jobs=2) == [
            2 * i for i in range(8)
        ]

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            resilient_map(_double, [1, 2], keys=["only-one"], n_jobs=1)

    # The pool's queue-feeder thread reports the (intentional) pickling
    # failure as an unhandled thread exception; the readable ValueError
    # is what callers see.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_unpicklable_func_rejected_for_pool(self):
        with pytest.raises(ValueError, match="picklable"):
            resilient_map(lambda x: x, [1, 2], n_jobs=2)

    def test_on_result_fires_once_per_item(self):
        seen = {}
        resilient_map(
            _double,
            [3, 4, 5],
            n_jobs=1,
            on_result=lambda i, v: seen.setdefault(i, v),
        )
        assert seen == {0: 6, 1: 8, 2: 10}

    def test_validate_failure_exhausts_budget(self):
        policy = RetryPolicy(max_retries=0, backoff_base=0.0)
        with pytest.raises(UnitExecutionError, match="'item-1'"):
            resilient_map(
                _double,
                [1, 2],
                n_jobs=1,
                policy=policy,
                validate=lambda v: v != 4,
            )


class TestStructuredFailure:
    def test_exhausted_retries_name_the_unit(self):
        plan = FaultPlan({"stuck": FaultSpec("crash", attempts=99)})
        policy = RetryPolicy(max_retries=1, backoff_base=0.0)
        with injected(plan):
            with pytest.raises(UnitExecutionError) as err:
                resilient_map(
                    _double, [7, 8], keys=["fine", "stuck"], n_jobs=1, policy=policy
                )
        e = err.value
        assert e.key == "stuck"
        assert e.index == 1
        # initial + 1 pool retry + serial fallback, all failed
        assert len(e.failures) == policy.total_tries
        assert all(f.kind == "error" for f in e.failures)
        assert "stuck" in str(e) and "failed permanently" in str(e)

    def test_exhausted_retries_in_pool_mode(self):
        plan = FaultPlan({"stuck": FaultSpec("poison", attempts=99)})
        policy = RetryPolicy(max_retries=0, backoff_base=0.0)
        with injected(plan):
            with pytest.raises(UnitExecutionError) as err:
                resilient_map(
                    _double,
                    [7, 8, 9],
                    keys=["a", "stuck", "c"],
                    n_jobs=2,
                    policy=policy,
                )
        assert err.value.key == "stuck"
        assert all(f.kind == "poison" for f in err.value.failures)


POLICY = RetryPolicy(max_retries=2, backoff_base=0.0, poll_interval=0.02)


class TestChaosRecovery:
    """Injected faults recover with results bit-identical to clean runs."""

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["crash", "poison", "oom"])
    def test_single_fault_kinds(self, clean_run, n_jobs, kind):
        keys = _unit_keys()
        plan = FaultPlan({keys[0]: FaultSpec(kind), keys[-1]: FaultSpec(kind)})
        with injected(plan):
            chaotic = _run(n_jobs, policy=POLICY)
        _assert_identical(chaotic, clean_run)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_seeded_mixed_plan(self, clean_run, n_jobs):
        # A seed-derived plan over all units: the chaos itself is
        # reproducible, so this test never flakes.
        plan = FaultPlan.from_seed(
            42, _unit_keys(), rate=0.6, kinds=("crash", "poison", "oom")
        )
        assert not plan.is_empty
        with injected(plan):
            chaotic = _run(n_jobs, policy=POLICY)
        _assert_identical(chaotic, clean_run)

    def test_repeated_faults_still_recover(self, clean_run):
        # Two consecutive failures of the same unit: needs both pool
        # retries, still bit-identical.
        keys = _unit_keys()
        plan = FaultPlan({keys[1]: FaultSpec("crash", attempts=2)})
        with injected(plan):
            chaotic = _run(2, policy=POLICY)
        _assert_identical(chaotic, clean_run)

    def test_dead_worker_pool_is_rebuilt(self, clean_run):
        # `die` kills the worker process outright -> BrokenProcessPool;
        # the executor must replace the pool and re-run the unit.
        keys = _unit_keys()
        plan = FaultPlan({keys[2]: FaultSpec("die")})
        with injected(plan):
            chaotic = _run(2, policy=POLICY)
        _assert_identical(chaotic, clean_run)

    def test_hung_unit_times_out_and_recovers(self, clean_run):
        # The hang (30 s) far exceeds the timeout (0.5 s): recovery must
        # come from timeout supervision killing the pool, not from the
        # sleep expiring.
        keys = _unit_keys()
        plan = FaultPlan({keys[0]: FaultSpec("hang", seconds=30.0)})
        policy = RetryPolicy(
            max_retries=2, unit_timeout=0.5, backoff_base=0.0, poll_interval=0.02
        )
        with injected(plan):
            chaotic = _run(2, policy=policy)
        _assert_identical(chaotic, clean_run)

    def test_hang_in_serial_mode_terminates_via_raise(self, clean_run):
        # No preemption at n_jobs=1 — injected hangs sleep-then-raise,
        # so the budgeted retry still recovers the unit.
        keys = _unit_keys()
        plan = FaultPlan({keys[3]: FaultSpec("hang", seconds=0.1)})
        with injected(plan):
            chaotic = _run(1, policy=POLICY)
        _assert_identical(chaotic, clean_run)


@pytest.mark.chaos
def test_abandon_kills_live_workers():
    """_abandon must SIGKILL workers, not just drop the pool.

    ``Executor.shutdown()`` nulls ``_processes``, so the snapshot has
    to happen first — regression test for the leak where a hung worker
    survived pool abandonment and stalled interpreter exit until its
    sleep expired.
    """
    import time as _time
    from concurrent.futures import ProcessPoolExecutor

    from repro.sim.resilient import _abandon

    pool = ProcessPoolExecutor(max_workers=1)
    pool.submit(_time.sleep, 600)
    deadline = _time.monotonic() + 10.0
    while not pool._processes and _time.monotonic() < deadline:
        _time.sleep(0.01)
    procs = list(pool._processes.values())
    assert procs, "worker never spawned"
    _abandon(pool)
    for proc in procs:
        proc.join(timeout=10.0)
        assert not proc.is_alive(), "abandoned worker survived the kill"


class TestObservabilityUnderChaos:
    def test_stable_snapshots_identical_across_jobs_and_faults(self, obs_enabled):
        keys = _unit_keys()
        plan = FaultPlan(
            {keys[0]: FaultSpec("crash"), keys[2]: FaultSpec("poison")}
        )
        snapshots = {}
        obs = obs_enabled
        # clean serial resilient run is the reference
        obs.reset()
        _run(1, policy=POLICY)
        snapshots["clean-1"] = obs_metrics.snapshot_json(obs_metrics.stable_snapshot())
        for n_jobs in (1, 2, 4):
            obs.reset()
            with injected(plan):
                _run(n_jobs, policy=POLICY)
            snapshots[f"chaos-{n_jobs}"] = obs_metrics.snapshot_json(
                obs_metrics.stable_snapshot()
            )
        assert len(set(snapshots.values())) == 1, snapshots

    def test_retry_counters_record_the_chaos(self, obs_enabled):
        keys = _unit_keys()
        plan = FaultPlan({keys[0]: FaultSpec("crash")})
        with injected(plan):
            _run(1, policy=POLICY)
        snap = obs_metrics.snapshot()
        assert snap["counters"]["resilience.failures"] == 1
        assert snap["counters"]["resilience.retries"] == 1
        assert snap["counters"]["resilience.units_recovered"] == 1

    def test_stable_snapshot_strips_volatile_names(self, obs_enabled):
        obs_metrics.inc("resilience.retries", 3)
        obs_metrics.inc("runner.units_built", 1)
        stable = obs_metrics.stable_snapshot()
        assert "resilience.retries" not in stable["counters"]
        assert stable["counters"]["runner.units_built"] == 1
        # the raw snapshot still carries it
        assert obs_metrics.snapshot()["counters"]["resilience.retries"] == 3

    def test_legacy_path_records_no_resilience_metrics(self, obs_enabled):
        _run(1)  # no policy -> parallel_map path
        counters = obs_metrics.snapshot()["counters"]
        assert not any(name.startswith("resilience.") for name in counters)
