"""Tests for the blue-dominant centers machinery (Def. 4.2 / Lemma 4.3)."""

import numpy as np
import pytest

from repro.core.dominance import (
    dominance_threshold_holds,
    find_blue_dominant,
    is_z_blue_dominant,
)


class TestIsZBlueDominant:
    def test_paper_figure_example(self):
        """Fig. 4's structure: a blue point whose every circle holds
        at least twice as many blue as red points."""
        # Blue cluster around origin, red points far out.
        blue = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0], [1.0, 1.0]]
        )
        red = np.array([[10.0, 0.0], [0.0, 12.0]])
        assert is_z_blue_dominant(blue, red, 0, z=2)

    def test_red_nearby_breaks_dominance(self):
        blue = np.array([[0.0, 0.0], [5.0, 0.0]])
        red = np.array([[0.5, 0.0]])
        # Circle of radius 0.5 around blue[0]: 1 blue vs 1 red -> not > z*1.
        assert not is_z_blue_dominant(blue, red, 0, z=1)

    def test_no_red_always_dominant(self):
        blue = np.array([[0.0, 0.0], [1.0, 1.0]])
        red = np.zeros((0, 2))
        assert is_z_blue_dominant(blue, red, 0, z=3)

    def test_z_monotone(self):
        """Dominance at larger z implies dominance at smaller z."""
        rng = np.random.default_rng(0)
        blue = rng.uniform(0, 10, (30, 2))
        red = rng.uniform(0, 10, (2, 2))
        for i in range(30):
            if is_z_blue_dominant(blue, red, i, z=3):
                assert is_z_blue_dominant(blue, red, i, z=1)

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            is_z_blue_dominant(np.zeros((1, 2)), np.zeros((0, 2)), 0, z=0)


class TestLemma43:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("z", [1, 2])
    def test_existence_above_threshold(self, seed, z):
        """Lemma 4.3: |blue| > 5 z |red| guarantees a dominant point."""
        rng = np.random.default_rng(seed)
        n_red = 3
        n_blue = 5 * z * n_red + 1
        blue = rng.uniform(0, 100, (n_blue, 2))
        red = rng.uniform(0, 100, (n_red, 2))
        assert dominance_threshold_holds(blue, red, z)
        assert find_blue_dominant(blue, red, z) is not None

    def test_threshold_predicate(self):
        blue = np.zeros((11, 2)) + np.arange(11)[:, None]
        red = np.array([[500.0, 500.0]])
        assert dominance_threshold_holds(blue, red, 2)  # 11 > 10
        assert not dominance_threshold_holds(blue[:10], red, 2)

    def test_below_threshold_may_fail(self):
        """A configuration with no dominant point (sanity that the
        checker can say no): reds co-located with every blue."""
        blue = np.array([[0.0, 0.0], [10.0, 0.0]])
        red = np.array([[0.1, 0.0], [10.1, 0.0]])
        assert find_blue_dominant(blue, red, z=1) is None

    def test_found_point_verifies(self):
        rng = np.random.default_rng(3)
        blue = rng.uniform(0, 50, (40, 2))
        red = rng.uniform(0, 50, (3, 2))
        idx = find_blue_dominant(blue, red, z=2)
        assert idx is not None
        assert is_z_blue_dominant(blue, red, idx, z=2)


class TestRleProofConnection:
    def test_lemma44_setup_numerically(self):
        """The Lemma 4.4 proof labels opt-minus-RLE senders blue and RLE
        senders red; when the blue set is large enough a dominant blue
        sender exists — replay that argument on a real instance."""
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule
        from repro.network.topology import paper_topology

        p = FadingRLS(links=paper_topology(200, seed=0))
        rle = set(rle_schedule(p).active.tolist())
        others = [i for i in range(p.n_links) if i not in rle]
        blue = p.links.senders[others]
        red = p.links.senders[sorted(rle)]
        z = 1
        if len(others) > 5 * z * len(rle):
            assert find_blue_dominant(blue, red, z) is not None
