"""Smoke tests: every example script must run end-to-end.

Each example is executed in-process (import + ``main`` with small
arguments) so failures surface with real tracebacks and the suite stays
fast.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main(n_links=60, seed=0)
        out = capsys.readouterr().out
        assert "scheduler" in out and "rle" in out

    def test_fading_vs_deterministic(self, capsys):
        load_example("fading_vs_deterministic").main(n_links=60, seed=0)
        out = capsys.readouterr().out
        assert "Verified" in out

    def test_knapsack_hardness(self, capsys):
        load_example("knapsack_hardness").main(n_items=6, seed=0)
        out = capsys.readouterr().out
        assert "Thm 3.2 verified" in out

    def test_sensor_collection(self, capsys):
        load_example("sensor_collection").main(n_sensors=40, seed=0)
        out = capsys.readouterr().out
        assert "slots needed" in out

    def test_power_control(self, capsys):
        load_example("power_control").main(n_links=60, seed=0)
        out = capsys.readouterr().out
        assert "power policy" in out

    def test_mobility_rounds(self, capsys):
        load_example("mobility_rounds").main(n_links=50, n_steps=4, seed=0)
        out = capsys.readouterr().out
        assert "churn" in out

    def test_distributed_protocol(self, capsys):
        load_example("distributed_protocol").main(n_links=60, seed=0)
        out = capsys.readouterr().out
        assert "Protocol cost" in out and "beacon messages" in out

    def test_capacity_planning(self, capsys, tmp_path, monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
        load_example("capacity_planning").main(n_links=80, seed=0)
        out = capsys.readouterr().out
        assert "packing ceiling" in out and "best eps" in out

    def test_paper_figures_quick(self, capsys, monkeypatch):
        # Shrink the quick config further for the smoke run.
        module = load_example("paper_figures")
        from repro.experiments.config import ExperimentConfig

        tiny = ExperimentConfig(
            n_links_sweep=(20,),
            alpha_sweep=(3.0,),
            n_links_fixed=20,
            n_repetitions=1,
            n_trials=20,
        )
        monkeypatch.setattr(
            module, "ExperimentConfig", lambda **kw: tiny
        )
        module.main(full=False)
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out and "Fig. 6(b)" in out

    def test_all_examples_have_docstrings_and_mains(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            text = path.read_text()
            assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), path
            assert "def main(" in text, path
            assert '__name__ == "__main__"' in text, path
