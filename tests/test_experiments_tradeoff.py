"""Tests for the eps reliability/throughput trade-off driver."""

import pytest

from repro.core.base import get_scheduler
from repro.experiments.tradeoff import EpsPoint, best_eps, eps_tradeoff


@pytest.fixture(scope="module")
def sweep():
    return eps_tradeoff(
        {"rle": get_scheduler("rle"), "greedy": get_scheduler("greedy")},
        eps_values=(0.01, 0.2),
        n_links=80,
        n_repetitions=2,
        n_trials=100,
    )


class TestEpsTradeoff:
    def test_grid_complete(self, sweep):
        assert len(sweep) == 4  # 2 eps x 2 schedulers
        assert {p.algorithm for p in sweep} == {"rle", "greedy"}
        assert {p.eps for p in sweep} == {0.01, 0.2}

    def test_larger_eps_schedules_more(self, sweep):
        """Bigger budget -> denser schedules, for every scheduler."""
        for alg in ("rle", "greedy"):
            pts = sorted((p for p in sweep if p.algorithm == alg), key=lambda p: p.eps)
            assert pts[1].mean_scheduled >= pts[0].mean_scheduled

    def test_larger_eps_more_failures(self, sweep):
        for alg in ("rle", "greedy"):
            pts = sorted((p for p in sweep if p.algorithm == alg), key=lambda p: p.eps)
            assert pts[1].mean_failed >= pts[0].mean_failed

    def test_goodput_positive(self, sweep):
        assert all(p.mean_expected_goodput > 0 for p in sweep)

    def test_best_eps(self, sweep):
        best = best_eps(sweep, "rle")
        assert isinstance(best, EpsPoint)
        assert best.mean_expected_goodput == max(
            p.mean_expected_goodput for p in sweep if p.algorithm == "rle"
        )

    def test_best_eps_unknown_algorithm(self, sweep):
        with pytest.raises(KeyError):
            best_eps(sweep, "nope")
