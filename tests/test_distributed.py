"""Tests for the message-passing engine and the DLS protocol."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.distributed.dls_protocol import run_dls_protocol
from repro.distributed.engine import Message, Node, SyncEngine
from repro.network.links import LinkSet
from repro.network.topology import clustered_topology, paper_topology


class _Counter(Node):
    """Counts to a target, messaging its successor each round."""

    def __init__(self, target):
        self.count = 0
        self.target = target
        self.received = 0

    def step(self, round_index, inbox):
        self.received += len(inbox)
        self.count += 1
        if self.count >= self.target:
            return []
        return [Message(self.node_id, (self.node_id + 1) % 3, self.count)]

    @property
    def done(self):
        return self.count >= self.target


class TestEngine:
    def test_runs_until_done(self):
        nodes = [_Counter(4) for _ in range(3)]
        engine = SyncEngine(nodes)
        stats = engine.run()
        assert stats.rounds == 4
        assert all(n.count == 4 for n in nodes)

    def test_message_delivery_next_round(self):
        nodes = [_Counter(3) for _ in range(3)]
        SyncEngine(nodes).run()
        # Rounds 0 and 1 send (count 1, 2); each node hears 2 messages.
        assert all(n.received == 2 for n in nodes)

    def test_message_counting(self):
        nodes = [_Counter(3) for _ in range(3)]
        stats = SyncEngine(nodes).run()
        assert stats.total_messages == 6  # 3 nodes x 2 sending rounds
        assert stats.messages_per_round == [3, 3, 0]

    def test_node_ids_assigned(self):
        nodes = [_Counter(1), _Counter(1)]
        SyncEngine(nodes)
        assert [n.node_id for n in nodes] == [0, 1]

    def test_nontermination_detected(self):
        class Forever(Node):
            def step(self, round_index, inbox):
                return []

        with pytest.raises(RuntimeError, match="terminate"):
            SyncEngine([Forever()]).run(max_rounds=5)

    def test_bad_recipient_rejected(self):
        class Shouter(Node):
            def step(self, round_index, inbox):
                return [Message(self.node_id, 99, None)]

        with pytest.raises(ValueError, match="unknown node"):
            SyncEngine([Shouter()]).run(max_rounds=2)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            SyncEngine([]).run(max_rounds=0)


class TestDlsProtocol:
    @pytest.mark.parametrize("seed", range(4))
    def test_output_feasible_against_full_matrix(self, seed):
        """The margin/threshold design must certify against ALL
        interference, not just the visible neighbours."""
        p = FadingRLS(links=paper_topology(150, seed=seed))
        result = run_dls_protocol(p, seed=seed)
        assert p.is_feasible(result.schedule.active)

    def test_feasible_on_dense_cluster(self):
        p = FadingRLS(links=clustered_topology(120, n_clusters=2, cluster_std=12.0, seed=0))
        result = run_dls_protocol(p, seed=1)
        assert p.is_feasible(result.schedule.active)

    def test_reproducible(self):
        p = FadingRLS(links=paper_topology(80, seed=0))
        a = run_dls_protocol(p, seed=42)
        b = run_dls_protocol(p, seed=42)
        np.testing.assert_array_equal(a.schedule.active, b.schedule.active)
        assert a.total_messages == b.total_messages

    def test_traffic_accounting(self):
        p = FadingRLS(links=paper_topology(100, seed=2))
        result = run_dls_protocol(p, seed=3)
        assert result.rounds >= 2
        assert result.total_messages > 0
        assert result.schedule.diagnostics["total_messages"] == result.total_messages

    def test_messages_bounded_by_neighborhood(self):
        """Per beacon round, traffic <= sum of out-neighbourhood sizes."""
        p = FadingRLS(links=paper_topology(100, seed=4))
        result = run_dls_protocol(p, seed=5)
        beacon_rounds = (result.rounds + 1) // 2
        assert result.total_messages <= beacon_rounds * result.mean_neighbors * p.n_links

    def test_empty_instance(self):
        p = FadingRLS(links=LinkSet.empty())
        result = run_dls_protocol(p)
        assert result.schedule.size == 0 and result.rounds == 0

    def test_unserviceable_links_stay_silent(self):
        noise = 0.01005 / 12.0**3
        p = FadingRLS(links=paper_topology(100, seed=6), noise=noise)
        bad = set(np.flatnonzero(~p.serviceable()).tolist())
        assert bad
        result = run_dls_protocol(p, seed=7)
        assert not (set(result.schedule.active.tolist()) & bad)
        assert p.is_feasible(result.schedule.active)

    def test_margin_validation(self):
        p = FadingRLS(links=paper_topology(10, seed=0))
        with pytest.raises(ValueError):
            run_dls_protocol(p, margin=0.0)
        with pytest.raises(ValueError):
            run_dls_protocol(p, backoff=1.0)
        with pytest.raises(ValueError):
            run_dls_protocol(p, p0=0.0)

    def test_margined_budget_respected(self):
        """Visible interference of every scheduled receiver stays within
        the margined budget (stronger than plain feasibility)."""
        p = FadingRLS(links=paper_topology(150, seed=8))
        margin = 0.25
        result = run_dls_protocol(p, seed=9, margin=margin)
        idx = result.schedule.active
        total = p.interference_on(idx)[idx]
        # Full interference <= budget; the visible part is even smaller.
        assert (total <= p.effective_budgets()[idx] + 1e-12).all()

    def test_comparable_to_matrix_dls(self):
        """Protocol output is in the same ballpark as the centralised
        reconstruction without join (same dynamics, margined budget)."""
        from repro.core.dls import dls_schedule

        p = FadingRLS(links=paper_topology(200, seed=10))
        proto = run_dls_protocol(p, seed=11).schedule.size
        central = dls_schedule(p, join=False, seed=11).size
        assert proto >= 0.3 * central
