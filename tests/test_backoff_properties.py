"""Property tests for the deterministic retry backoff.

`backoff_delay` must be a *pure function* of (unit key, attempt,
policy): deterministic, monotone non-decreasing per attempt (the
exponential doubling dominates the hash jitter), and strictly bounded —
per delay by `backoff_cap`, hence in total by
`(tries - 1) * backoff_cap`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resilient import RetryPolicy, backoff_delay

pytestmark = pytest.mark.chaos

keys = st.text(min_size=1, max_size=40)
attempts = st.integers(min_value=1, max_value=30)
policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=10),
    backoff_base=st.floats(
        min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
    ),
    backoff_cap=st.floats(
        min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
    ),
)


@settings(max_examples=200)
@given(key=keys, attempt=attempts, policy=policies)
def test_deterministic_in_key_and_attempt(key, attempt, policy):
    assert backoff_delay(key, attempt, policy) == backoff_delay(key, attempt, policy)


@settings(max_examples=200)
@given(key=keys, attempt=attempts, policy=policies)
def test_nonnegative_and_capped(key, attempt, policy):
    delay = backoff_delay(key, attempt, policy)
    assert 0.0 <= delay <= policy.backoff_cap


@settings(max_examples=200)
@given(key=keys, policy=policies)
def test_monotone_nondecreasing_per_attempt(key, policy):
    delays = [backoff_delay(key, a, policy) for a in range(1, 12)]
    assert all(b >= a for a, b in zip(delays, delays[1:])), delays


@settings(max_examples=100)
@given(key=keys, policy=policies)
def test_total_delay_strictly_bounded(key, policy):
    # Every retry sleeps at most backoff_cap, so a unit's whole retry
    # schedule (pool retries + serial fallback) is bounded.  The bound
    # is summed the same way as the delays (float addition is monotone,
    # so termwise domination survives the accumulation exactly).
    n_sleeps = policy.total_tries - 1
    total = sum(backoff_delay(key, a, policy) for a in range(1, policy.total_tries))
    assert total <= sum([policy.backoff_cap] * n_sleeps)


@settings(max_examples=100)
@given(key=keys, attempt=attempts)
def test_zero_base_means_zero_delay(key, attempt):
    policy = RetryPolicy(backoff_base=0.0)
    assert backoff_delay(key, attempt, policy) == 0.0


def test_attempt_must_be_positive():
    with pytest.raises(ValueError, match="attempt"):
        backoff_delay("k", 0, RetryPolicy())


def test_first_delay_near_base():
    # attempt 1: base * (1 + u), u in [0, 1) -> within [base, 2*base)
    policy = RetryPolicy(backoff_base=0.05, backoff_cap=10.0)
    d = backoff_delay("some-unit", 1, policy)
    assert 0.05 <= d < 0.10


def test_doubling_dominates_jitter():
    # Exact witness of the monotonicity argument: even maximal jitter at
    # attempt a is below minimal jitter at attempt a+1, because
    # 2^(a-1) * 2 <= 2^a * 1.
    policy = RetryPolicy(backoff_base=0.01, backoff_cap=1e9)
    for a in range(1, 10):
        hi_a = policy.backoff_base * 2.0 ** (a - 1) * 2.0
        lo_next = policy.backoff_base * 2.0**a * 1.0
        assert hi_a <= lo_next
