"""Property-based tests (hypothesis) on core invariants.

Strategies generate random geometries and channel parameters; the
properties are the paper's structural facts:

- feasibility is hereditary (Cor. 3.1's budget is monotone in the set),
- the interference factor matrix is the log1p of the affectance matrix,
- success probabilities from Thm 3.1 multiply over interferers,
- every scheduler's output is feasible and within the link set,
- the knapsack DP is exact against enumeration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.problem import FadingRLS, gamma_epsilon, interference_factors
from repro.network.links import LinkSet

# -- strategies ------------------------------------------------------


@st.composite
def link_sets(draw, min_links=1, max_links=12, region=200.0):
    """Random LinkSets with positive link lengths."""
    n = draw(st.integers(min_links, max_links))
    coords = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, 2),
            elements=st.floats(0.0, region, allow_nan=False, width=64),
        )
    )
    lengths = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n,),
            elements=st.floats(1.0, 30.0, allow_nan=False, width=64),
        )
    )
    angles = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n,),
            elements=st.floats(0.0, 2 * np.pi, allow_nan=False, width=64),
        )
    )
    receivers = coords + np.column_stack(
        [lengths * np.cos(angles), lengths * np.sin(angles)]
    )
    # Distinct-node sanity: interference factors blow up if an
    # interfering sender sits exactly on a victim receiver; nudge.
    from repro.geometry.distance import cross_distances

    d = cross_distances(coords, receivers)
    assume(d.min() > 1e-6)
    return LinkSet(senders=coords, receivers=receivers)


@st.composite
def problems(draw, **kwargs):
    links = draw(link_sets(**kwargs))
    alpha = draw(st.floats(2.1, 6.0))
    gamma_th = draw(st.floats(0.1, 4.0))
    eps = draw(st.floats(0.001, 0.2))
    return FadingRLS(links=links, alpha=alpha, gamma_th=gamma_th, eps=eps)


COMMON = settings(
    max_examples=40,
    deadline=None,
    # filter_too_much: the link_sets() distinct-node assume() can reject
    # many draws under an unlucky seed; that's slow, not wrong.
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


# -- invariants ------------------------------------------------------


class TestInterferenceInvariants:
    @COMMON
    @given(problems())
    def test_matrix_nonnegative_zero_diagonal(self, problem):
        f = problem.interference_matrix()
        assert (f >= 0).all()
        assert (np.diag(f) == 0).all()

    @COMMON
    @given(problems())
    def test_log1p_affectance_identity(self, problem):
        from repro.core.baselines.deterministic import affectance_matrix

        np.testing.assert_allclose(
            problem.interference_matrix(), np.log1p(affectance_matrix(problem)),
            rtol=1e-10, atol=1e-12,
        )

    @COMMON
    @given(problems(), st.integers(0, 2**31))
    def test_feasibility_hereditary(self, problem, seed):
        """Removing a link never breaks feasibility."""
        rng = np.random.default_rng(seed)
        n = problem.n_links
        mask = rng.uniform(size=n) < 0.5
        active = np.flatnonzero(mask)
        if active.size == 0 or not problem.is_feasible(active):
            assume(False)
        drop = rng.integers(0, active.size)
        subset = np.delete(active, drop)
        assert problem.is_feasible(subset)

    @COMMON
    @given(problems())
    def test_interference_additive_over_senders(self, problem):
        """interference_on(P) == sum of single-sender interference."""
        n = problem.n_links
        total = problem.interference_on(np.arange(n))
        acc = np.zeros(n)
        for i in range(n):
            acc += problem.interference_on([i])
        np.testing.assert_allclose(total, acc, rtol=1e-9, atol=1e-12)

    @COMMON
    @given(problems())
    def test_success_probability_exp_identity(self, problem):
        """Thm 3.1: success prob == exp(-summed interference factors)."""
        n = problem.n_links
        active = np.arange(n)
        probs = problem.success_probabilities(active)
        inf = problem.interference_on(active)
        np.testing.assert_allclose(probs, np.exp(-inf), rtol=1e-9)

    @COMMON
    @given(problems())
    def test_eps_monotone_feasibility(self, problem):
        """Raising eps (bigger budget) keeps feasible sets feasible."""
        n = problem.n_links
        active = np.arange(n)
        if not problem.is_feasible(active):
            assume(False)
        looser = problem.with_params(eps=min(0.5, problem.eps * 2))
        assert looser.is_feasible(active)


class TestSchedulerProperties:
    @COMMON
    @given(problems(max_links=20))
    def test_ldp_output_feasible(self, problem):
        from repro.core.ldp import ldp_schedule

        s = ldp_schedule(problem)
        assert s.size >= 1
        assert problem.is_feasible(s.active)

    @COMMON
    @given(problems(max_links=20))
    def test_rle_output_feasible(self, problem):
        from repro.core.rle import rle_schedule

        s = rle_schedule(problem)
        assert s.size >= 1
        assert problem.is_feasible(s.active)

    @COMMON
    @given(problems(max_links=20), st.integers(0, 2**31))
    def test_dls_output_feasible(self, problem, seed):
        from repro.core.dls import dls_schedule

        s = dls_schedule(problem, seed=seed)
        assert problem.is_feasible(s.active)

    @COMMON
    @given(problems(max_links=20))
    def test_greedy_output_feasible_and_maximal(self, problem):
        from repro.core.baselines.naive import greedy_fading_schedule

        s = greedy_fading_schedule(problem)
        assert problem.is_feasible(s.active)
        mask = s.mask(problem.n_links)
        for i in np.flatnonzero(~mask):
            assert not problem.is_feasible(np.append(s.active, i))

    @COMMON
    @given(problems(max_links=10))
    def test_exact_solvers_agree(self, problem):
        from repro.core.exact import branch_and_bound_schedule, brute_force_schedule

        bf = problem.scheduled_rate(brute_force_schedule(problem).active)
        bb = problem.scheduled_rate(branch_and_bound_schedule(problem).active)
        assert bb == pytest.approx(bf, rel=1e-12)

    @COMMON
    @given(problems(max_links=10))
    def test_heuristics_never_beat_optimum(self, problem):
        from repro.core.exact import branch_and_bound_schedule
        from repro.core.ldp import ldp_schedule
        from repro.core.rle import rle_schedule

        opt = problem.scheduled_rate(branch_and_bound_schedule(problem).active)
        assert problem.scheduled_rate(ldp_schedule(problem).active) <= opt + 1e-9
        assert problem.scheduled_rate(rle_schedule(problem).active) <= opt + 1e-9


class TestGammaEpsilon:
    @given(st.floats(1e-6, 1 - 1e-6))
    def test_positive_and_monotone(self, eps):
        g = gamma_epsilon(eps)
        assert g > 0
        assert gamma_epsilon(min(eps * 1.5, 1 - 1e-9)) >= g

    @given(st.floats(1e-6, 0.5))
    def test_small_eps_approximation(self, eps):
        """gamma_eps ~ eps for small eps (ln(1/(1-e)) = e + O(e^2))."""
        g = gamma_epsilon(eps)
        assert eps <= g <= eps / (1 - eps) + 1e-12


class TestKnapsackDp:
    @COMMON
    @given(
        st.integers(1, 10),
        st.integers(0, 2**31),
    )
    def test_dp_matches_enumeration(self, n, seed):
        from repro.core.reduction import (
            KnapsackInstance,
            solve_knapsack_brute,
            solve_knapsack_dp,
        )

        rng = np.random.default_rng(seed)
        inst = KnapsackInstance(
            values=rng.integers(1, 50, n).astype(float),
            weights=rng.integers(1, 20, n).astype(float),
            capacity=float(rng.integers(1, 60)),
        )
        v_dp, chosen = solve_knapsack_dp(inst)
        v_bf, _ = solve_knapsack_brute(inst)
        assert v_dp == pytest.approx(v_bf)
        assert inst.weights[chosen].sum() <= inst.capacity + 1e-9


class TestInterferenceFactorsFunction:
    @given(
        st.floats(2.1, 6.0),
        st.floats(0.1, 4.0),
        st.floats(1.0, 50.0),
        st.floats(1.0, 500.0),
    )
    def test_two_link_closed_form(self, alpha, gamma_th, own, cross):
        d = np.array([[own, cross], [cross, own]])
        f = interference_factors(d, alpha, gamma_th)
        expected = np.log1p(gamma_th * (own / cross) ** alpha)
        assert f[0, 1] == pytest.approx(expected, rel=1e-10)
        assert f[1, 0] == pytest.approx(expected, rel=1e-10)
