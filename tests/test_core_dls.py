"""Tests for the DLS decentralised scheduler (reconstruction)."""

import numpy as np
import pytest

from repro.core.dls import dls_schedule
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import clustered_topology, paper_topology


class TestDls:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert dls_schedule(p).size == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_always_feasible(self, seed):
        p = FadingRLS(links=paper_topology(200, seed=seed))
        s = dls_schedule(p, seed=seed)
        assert p.is_feasible(s.active)

    def test_feasible_on_dense_cluster(self):
        p = FadingRLS(links=clustered_topology(150, n_clusters=2, cluster_std=10.0, seed=0))
        s = dls_schedule(p, seed=0)
        assert p.is_feasible(s.active)

    def test_seed_reproducible(self, paper_problem):
        a = dls_schedule(paper_problem, seed=42)
        b = dls_schedule(paper_problem, seed=42)
        np.testing.assert_array_equal(a.active, b.active)

    def test_join_phase_makes_maximal(self, paper_problem):
        """With the join phase no leftover link fits the schedule."""
        s = dls_schedule(paper_problem, seed=0, join=True)
        mask = s.mask(paper_problem.n_links)
        for i in np.flatnonzero(~mask):
            assert not paper_problem.is_feasible(np.append(s.active, i))

    def test_join_improves_size(self, paper_problem):
        with_join = dls_schedule(paper_problem, seed=1, join=True)
        without = dls_schedule(paper_problem, seed=1, join=False)
        assert with_join.size >= without.size

    def test_invalid_params(self, paper_problem):
        with pytest.raises(ValueError):
            dls_schedule(paper_problem, p0=0.0)
        with pytest.raises(ValueError):
            dls_schedule(paper_problem, backoff=1.5)

    def test_diagnostics(self, paper_problem):
        s = dls_schedule(paper_problem, seed=3)
        assert s.diagnostics["rounds"] >= 1
        assert s.diagnostics["joined_late"] >= 0

    def test_converges_even_with_tiny_backoff(self):
        """The forced-eviction fallback guarantees progress."""
        p = FadingRLS(links=clustered_topology(80, n_clusters=1, cluster_std=5.0, seed=1))
        s = dls_schedule(p, seed=0, backoff=0.01, max_rounds=100_000)
        assert p.is_feasible(s.active)
