"""The disabled path must be ~free: a budget on instrumentation cost.

Comparing two full experiment runs is hopelessly noisy on shared CI, so
the guard is built the other way around: measure the *per-call* cost of
the disabled instruments directly (tight loop, best of several repeats),
count how many instrumented calls one fig5 smoke run actually executes
(from an enabled run's records), and assert that the product — the
total disabled-path cost hiding inside the run — stays under 5% of the
run's measured wall time.
"""

from __future__ import annotations

import time

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import failed_vs_links
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

_LOOP = 20_000


def _best_of(fn, repeats=3):
    return min(fn() for _ in range(repeats))


def _time_disabled_span() -> float:
    def once():
        t0 = time.perf_counter()
        for _ in range(_LOOP):
            with span("overhead.probe", n=1):
                pass
        return (time.perf_counter() - t0) / _LOOP

    return _best_of(once)


def _time_disabled_inc() -> float:
    def once():
        t0 = time.perf_counter()
        for _ in range(_LOOP):
            obs_metrics.inc("overhead.probe", 1)
        return (time.perf_counter() - t0) / _LOOP

    return _best_of(once)


class TestDisabledOverheadBudget:
    def test_noop_path_within_5_percent_of_fig5_smoke(self):
        assert not obs.is_enabled()
        cfg = ExperimentConfig().small()
        failed_vs_links(cfg)  # warm imports and matrix caches
        t0 = time.perf_counter()
        failed_vs_links(cfg)
        run_wall = time.perf_counter() - t0

        # count the instrumented calls that run actually makes
        obs.enable()
        obs.reset()
        try:
            failed_vs_links(cfg)
            n_spans = len(obs.drain_spans())
            snap = obs_metrics.snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert n_spans > 0
        # metric *calls* <= one per span plus a small fixed number of
        # registry-level counters per unit; bound generously
        n_metric_calls = 4 * n_spans + 100

        per_span = _time_disabled_span()
        per_inc = _time_disabled_inc()
        overhead = n_spans * per_span + n_metric_calls * per_inc
        assert overhead < 0.05 * run_wall, (
            f"disabled obs path costs {overhead * 1e3:.3f} ms against a "
            f"{run_wall * 1e3:.1f} ms fig5 smoke run "
            f"({n_spans} spans @ {per_span * 1e9:.0f} ns, "
            f"{n_metric_calls} metric calls @ {per_inc * 1e9:.0f} ns)"
        )
        # sanity: the enabled run did record the expected counters
        assert snap["counters"].get("runner.sweep_points", 0) > 0

    def test_disabled_span_is_allocation_free_fastpath(self):
        # the disabled call returns the shared singleton: sub-microsecond
        assert _time_disabled_span() < 5e-6
        assert _time_disabled_inc() < 5e-6
