"""Tests for fault plans (`repro.faults.plan`).

Plans are pure, deterministic data: the same seed and key set must
produce the same adversity every time, and the JSON wire format must
round-trip exactly (it rides in an environment variable).
"""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos


class TestFaultSpec:
    def test_valid_kinds_accepted(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meltdown")

    def test_nonpositive_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(kind="crash", attempts=0)

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="hang", seconds=0.0)

    def test_fires_is_attempt_window(self):
        spec = FaultSpec(kind="crash", attempts=2)
        assert spec.fires(0) and spec.fires(1)
        assert not spec.fires(2)
        assert not spec.fires(99)


class TestFaultPlan:
    def test_non_spec_entries_rejected(self):
        with pytest.raises(TypeError, match="not a FaultSpec"):
            FaultPlan({"0/0/ldp": "crash"})

    def test_len_and_lookup(self):
        plan = FaultPlan({"a": FaultSpec("crash"), "b": FaultSpec("poison")})
        assert len(plan) == 2
        assert not plan.is_empty
        assert plan.spec_for("a").kind == "crash"
        assert plan.spec_for("missing") is None

    def test_empty_plan(self):
        assert FaultPlan({}).is_empty

    def test_json_round_trip(self):
        plan = FaultPlan(
            {
                "0/1/rle": FaultSpec("hang", attempts=2, seconds=0.25),
                "1/0/ldp": FaultSpec("die"),
            }
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        # the wire format is canonical: re-encoding is byte-stable
        assert again.to_json() == plan.to_json()

    def test_from_json_rejects_junk(self):
        with pytest.raises(ValueError, match="malformed fault plan JSON"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_json('{"k": {"attempts": 1}}')


class TestFromSeed:
    KEYS = [f"{t}/{r}/{n}" for t in range(3) for r in range(4) for n in ("ldp", "rle")]

    def test_deterministic_in_seed_and_keys(self):
        a = FaultPlan.from_seed(7, self.KEYS, rate=0.5)
        b = FaultPlan.from_seed(7, self.KEYS, rate=0.5)
        assert a == b and a.to_json() == b.to_json()

    def test_independent_of_key_order(self):
        a = FaultPlan.from_seed(7, self.KEYS, rate=0.5)
        b = FaultPlan.from_seed(7, list(reversed(self.KEYS)), rate=0.5)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan.from_seed(7, self.KEYS, rate=0.5)
        b = FaultPlan.from_seed(8, self.KEYS, rate=0.5)
        assert a != b

    def test_rate_extremes(self):
        assert FaultPlan.from_seed(7, self.KEYS, rate=0.0).is_empty
        full = FaultPlan.from_seed(7, self.KEYS, rate=1.0)
        assert set(full.faults) == set(self.KEYS)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.from_seed(7, self.KEYS, rate=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_seed(7, self.KEYS, kinds=("crash", "meltdown"))

    def test_only_requested_kinds_drawn(self):
        plan = FaultPlan.from_seed(3, self.KEYS, rate=1.0, kinds=("poison", "oom"))
        kinds = {spec.kind for spec in plan.faults.values()}
        assert kinds <= {"poison", "oom"}
        # with 24 keys both kinds should actually appear
        assert kinds == {"poison", "oom"}
