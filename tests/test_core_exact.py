"""Tests for the exact solvers."""

import pytest

from repro.core.exact import (
    branch_and_bound_schedule,
    brute_force_schedule,
    milp_schedule,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology, random_rates_topology


class TestBruteForce:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert brute_force_schedule(p).size == 0

    def test_limit_guard(self):
        p = FadingRLS(links=paper_topology(25, seed=0))
        with pytest.raises(ValueError, match="limit"):
            brute_force_schedule(p)

    def test_output_feasible(self, small_problem):
        s = brute_force_schedule(small_problem)
        assert small_problem.is_feasible(s.active)

    def test_optimum_recorded(self, small_problem):
        s = brute_force_schedule(small_problem)
        assert s.diagnostics["optimum"] == small_problem.scheduled_rate(s.active)

    def test_beats_every_heuristic(self, small_problem):
        from repro.core.base import get_scheduler

        opt = small_problem.scheduled_rate(brute_force_schedule(small_problem).active)
        for name in ("ldp", "rle", "greedy", "random", "dls"):
            kwargs = {"seed": 0} if name in ("random", "dls") else {}
            s = get_scheduler(name)(small_problem, **kwargs)
            assert small_problem.scheduled_rate(s.active) <= opt + 1e-9


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        links = paper_topology(10, region_side=120, seed=seed)
        p = FadingRLS(links=links)
        bf = p.scheduled_rate(brute_force_schedule(p).active)
        bb = p.scheduled_rate(branch_and_bound_schedule(p).active)
        assert bb == pytest.approx(bf)

    def test_heterogeneous_rates(self):
        links = random_rates_topology(10, region_side=120, seed=1)
        p = FadingRLS(links=links)
        bf = p.scheduled_rate(brute_force_schedule(p).active)
        bb = p.scheduled_rate(branch_and_bound_schedule(p).active)
        assert bb == pytest.approx(bf)

    def test_output_feasible(self, small_problem):
        assert small_problem.is_feasible(branch_and_bound_schedule(small_problem).active)

    def test_prunes_nodes(self):
        """B&B should visit far fewer nodes than brute force enumerates."""
        p = FadingRLS(links=paper_topology(14, region_side=150, seed=2))
        s = branch_and_bound_schedule(p)
        assert s.diagnostics["nodes_visited"] < 2**14

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert branch_and_bound_schedule(p).size == 0

    def test_handles_larger_instances_than_brute_force(self):
        p = FadingRLS(links=paper_topology(30, seed=3))
        s = branch_and_bound_schedule(p)
        assert p.is_feasible(s.active)
        assert s.size >= 1


class TestMilp:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        links = paper_topology(10, region_side=120, seed=seed)
        p = FadingRLS(links=links)
        bf = p.scheduled_rate(brute_force_schedule(p).active)
        mi = p.scheduled_rate(milp_schedule(p).active)
        assert mi == pytest.approx(bf, abs=1e-6)

    def test_output_feasible(self, small_problem):
        s = milp_schedule(small_problem)
        assert small_problem.is_feasible(s.active, tol=1e-6)

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert milp_schedule(p).size == 0

    def test_heterogeneous_rates(self):
        links = random_rates_topology(12, region_side=150, seed=5)
        p = FadingRLS(links=links)
        bb = p.scheduled_rate(branch_and_bound_schedule(p).active)
        mi = p.scheduled_rate(milp_schedule(p).active)
        assert mi == pytest.approx(bb, abs=1e-6)

    def test_scales_past_brute_force(self):
        p = FadingRLS(links=paper_topology(40, seed=6))
        s = milp_schedule(p)
        assert p.is_feasible(s.active, tol=1e-6)
