"""Tests for repro.channel.pathloss."""

import numpy as np
import pytest

from repro.channel.pathloss import mean_received_power, pathloss_matrix


class TestMeanReceivedPower:
    def test_scalar(self):
        assert mean_received_power(2.0, alpha=3.0) == pytest.approx(0.125)

    def test_power_scales_linearly(self):
        assert mean_received_power(2.0, alpha=3.0, power=4.0) == pytest.approx(0.5)

    def test_unit_distance(self):
        assert mean_received_power(1.0, alpha=5.0) == 1.0

    def test_array(self):
        out = mean_received_power(np.array([1.0, 2.0]), alpha=2.0)
        np.testing.assert_allclose(out, [1.0, 0.25])

    def test_monotone_decreasing_in_distance(self):
        d = np.linspace(1, 100, 50)
        p = mean_received_power(d, alpha=3.0)
        assert (np.diff(p) < 0).all()

    def test_larger_alpha_decays_faster(self):
        assert mean_received_power(10.0, alpha=4.0) < mean_received_power(10.0, alpha=3.0)

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            mean_received_power(0.0, alpha=3.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            mean_received_power(1.0, alpha=0.0)


class TestPathlossMatrix:
    def test_matches_elementwise(self, rng):
        d = rng.uniform(1, 50, size=(4, 4))
        m = pathloss_matrix(d, alpha=3.0, power=2.0)
        np.testing.assert_allclose(m, 2.0 * d**-3.0)

    def test_nonpositive_rejected(self):
        d = np.array([[1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            pathloss_matrix(d, alpha=3.0)
