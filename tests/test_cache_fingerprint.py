"""Fingerprint/content-hash canonicalisation tests.

The first class pins the *byte values* of the shared content-hash keys
across the dedupe into :mod:`repro.cache.fingerprint`: existing
checkpoint/result directories must keep resuming, so these hex strings
are a compatibility contract, not an implementation detail.  If one of
these assertions fails, the fix is to restore the key derivation — not
to update the expected string.
"""

import functools

import numpy as np
import pytest

from repro.cache.fingerprint import (
    QUANTUM,
    canonical_channel,
    config_key,
    describe_callable,
    exact_key,
    fingerprint_with_order,
    geometry_distance,
    scheduler_identity,
    topology_fingerprint,
)
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.config import TopologyWorkload
from repro.network.links import LinkSet
from repro.sim.parallel import WorkUnit, checkpoint_key
from repro.verify.fuzz import make_scenario


class TestKeyCompatibility:
    """Old checkpoint keys are unchanged (resume compatibility)."""

    def test_config_key_plain_params_pinned(self):
        assert config_key("exp", {"alpha": 3.0, "grid": (1, 2, 3)}) == (
            "e37a0c1b880cee8ba70520d2"
        )

    def test_config_key_numpy_params_pinned(self):
        key = config_key(
            "exp", {"n": np.int64(5), "x": np.float64(0.25), "arr": np.arange(3)}
        )
        assert key == "6efcdd177e57b27b9ca9b609"

    def test_checkpoint_key_default_unit_pinned(self):
        unit = WorkUnit(
            tag=0,
            rep=1,
            name="rle",
            scheduler=rle_schedule,
            workload=TopologyWorkload(n_links=30),
            n_trials=100,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=2017,
            scheduler_kwargs={"c2": 0.5},
        )
        assert checkpoint_key(unit) == "497fb7cb7e67530b8fbc33c0"

    def test_checkpoint_key_channel_unit_pinned(self):
        unit = WorkUnit(
            tag="fig5a",
            rep=0,
            name="ldp",
            scheduler=functools.partial(rle_schedule),
            workload=TopologyWorkload(n_links=12, region_side=100.0),
            n_trials=16,
            alpha=4.0,
            gamma_th=2.0,
            eps=0.05,
            root_seed=7,
            noise=0.1,
            channel="shadowing:sigma_db=6",
            power_policy="distance_proportional",
        )
        assert checkpoint_key(unit) == "8a0445a0a585b64d577fb103"

    def test_store_and_parallel_reexports_are_the_shared_function(self):
        from repro.experiments import store
        from repro.sim import parallel

        assert store.config_key is config_key
        assert parallel._describe_callable is describe_callable
        assert parallel._canonical_channel is canonical_channel


class TestCanonicalisers:
    def test_describe_callable_is_address_free(self):
        a = describe_callable(rle_schedule)
        assert a == describe_callable(rle_schedule)
        assert "0x" not in a

    def test_describe_callable_partial_recurses(self):
        desc = describe_callable(functools.partial(rle_schedule, c2=0.5))
        assert "rle_schedule" in desc and "c2" in desc

    def test_config_key_rejects_unserialisable(self):
        with pytest.raises(TypeError):
            config_key("exp", {"bad": object()})

    def test_scheduler_identity_orders_kwargs(self):
        a = scheduler_identity(rle_schedule, {"b": 1, "a": 2})
        b = scheduler_identity(rle_schedule, {"a": 2, "b": 1})
        assert a == b
        assert a != scheduler_identity(rle_schedule, {"a": 2})


def _problem(**overrides):
    return make_scenario("paper", 0, n_links=12, **overrides).problem


def _transformed(problem, *, theta=0.0, shift=(0.0, 0.0), scale=1.0, perm=None):
    rot = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    senders = scale * np.asarray(problem.links.senders) @ rot.T + np.asarray(shift)
    receivers = scale * np.asarray(problem.links.receivers) @ rot.T + np.asarray(shift)
    rates = np.asarray(problem.links.rates)
    if perm is not None:
        senders, receivers, rates = senders[perm], receivers[perm], rates[perm]
    return FadingRLS(
        links=LinkSet(senders=senders, receivers=receivers, rates=rates),
        alpha=problem.alpha,
        gamma_th=problem.gamma_th,
        eps=problem.eps,
        noise=problem.noise,
        power=problem.power,
    )


class TestExactKey:
    def test_identical_problems_share_the_key(self):
        p = _problem()
        sid = scheduler_identity(rle_schedule, None)
        assert exact_key(p, sid) == exact_key(_transformed(p), sid)

    def test_any_perturbation_changes_the_key(self):
        p = _problem()
        sid = scheduler_identity(rle_schedule, None)
        base = exact_key(p, sid)
        assert exact_key(_transformed(p, shift=(1e-9, 0.0)), sid) != base
        assert exact_key(p, scheduler_identity(rle_schedule, {"c2": 0.5})) != base

    def test_channel_parameters_are_part_of_the_key(self):
        p = _problem()
        q = FadingRLS(links=p.links, alpha=p.alpha + 0.5, gamma_th=p.gamma_th, eps=p.eps)
        sid = scheduler_identity(rle_schedule, None)
        assert exact_key(p, sid) != exact_key(q, sid)


class TestTopologyFingerprint:
    def test_relabeling_translation_rotation_invariant(self):
        p = _problem()
        perm = np.random.default_rng(7).permutation(p.n_links)
        q = _transformed(p, theta=1.1, shift=(42.0, -17.0), perm=perm)
        assert topology_fingerprint(p) == topology_fingerprint(q)

    def test_uniform_scaling_invariant_iff_noise_free(self):
        p = _problem()
        assert p.noise == 0.0
        assert topology_fingerprint(p) == topology_fingerprint(_transformed(p, scale=2.5))
        noisy = FadingRLS(
            links=p.links, alpha=p.alpha, gamma_th=p.gamma_th, eps=p.eps, noise=0.01
        )
        noisy_scaled = FadingRLS(
            links=_transformed(p, scale=2.5).links,
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
            noise=0.01,
        )
        assert topology_fingerprint(noisy) != topology_fingerprint(noisy_scaled)

    def test_geometric_perturbation_changes_the_fingerprint(self):
        p = _problem()
        senders = np.asarray(p.links.senders).copy()
        senders[0] += 1.0  # far above the quantization step
        q = FadingRLS(
            links=LinkSet(
                senders=senders,
                receivers=np.asarray(p.links.receivers),
                rates=np.asarray(p.links.rates),
            ),
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
        )
        assert topology_fingerprint(p) != topology_fingerprint(q)

    def test_channel_parameters_are_part_of_the_fingerprint(self):
        p = _problem()
        q = FadingRLS(links=p.links, alpha=p.alpha, gamma_th=2 * p.gamma_th, eps=p.eps)
        assert topology_fingerprint(p) != topology_fingerprint(q)

    def test_order_aligns_congruent_copies_link_for_link(self):
        p = _problem()
        perm = np.random.default_rng(3).permutation(p.n_links)
        q = _transformed(p, theta=0.4, shift=(5.0, 5.0), perm=perm)
        fp_p, order_p = fingerprint_with_order(p)
        fp_q, order_q = fingerprint_with_order(q)
        assert fp_p == fp_q
        # Canonical position k of q is the permuted image of canonical
        # position k of p — the alignment the canonical tier relies on.
        assert np.array_equal(perm[order_q], order_p)

    def test_quantization_absorbs_float_noise(self):
        # A rigid motion perturbs each distance by a few ulp (~1e-16
        # relative) — roughly 1e-7 of the quantization step, which is
        # what the quantum is sized to absorb.  Model it directly with
        # ulp-scale additive jitter on the coordinates.
        p = _problem()
        senders = np.asarray(p.links.senders)
        jitter = 1e-13 * np.sign(senders)
        q = FadingRLS(
            links=LinkSet(
                senders=senders + jitter,
                receivers=np.asarray(p.links.receivers),
                rates=np.asarray(p.links.rates),
            ),
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
        )
        assert topology_fingerprint(p) == topology_fingerprint(q)


class TestGeometryDistance:
    def test_zero_for_identical_sets(self):
        p = _problem()
        assert geometry_distance(p.links, p.links) == 0.0

    def test_scales_with_displacement(self):
        p = _problem()
        links = p.links
        mean_len = float(
            np.linalg.norm(
                np.asarray(links.receivers) - np.asarray(links.senders), axis=1
            ).mean()
        )
        moved = LinkSet(
            senders=np.asarray(links.senders) + (mean_len, 0.0),
            receivers=np.asarray(links.receivers) + (mean_len, 0.0),
            rates=np.asarray(links.rates),
        )
        assert geometry_distance(moved, links) == pytest.approx(1.0)

    def test_size_mismatch_raises(self):
        p = _problem()
        q = make_scenario("paper", 0, n_links=8).problem
        with pytest.raises(ValueError):
            geometry_distance(p.links, q.links)
