"""Tests for interference-field analysis."""

import numpy as np
import pytest

from repro.analysis.interference import admissible_fraction, interference_field, victim_hotspots
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.geometry.region import Region
from repro.network.links import LinkSet
from repro.network.topology import paper_topology

REGION = Region.square(500.0)


class TestInterferenceField:
    def test_shape_and_axes(self, paper_problem):
        s = rle_schedule(paper_problem)
        xs, ys, field = interference_field(paper_problem, s, REGION, resolution=20)
        assert xs.shape == (20,) and ys.shape == (20,)
        assert field.shape == (20, 20)
        assert (field >= 0).all()

    def test_empty_schedule_zero_field(self, paper_problem):
        _, _, field = interference_field(
            paper_problem, Schedule.empty(), REGION, resolution=10
        )
        np.testing.assert_array_equal(field, 0.0)

    def test_field_peaks_near_senders(self):
        links = LinkSet(senders=[[250.0, 250.0]], receivers=[[260.0, 250.0]])
        p = FadingRLS(links=links)
        xs, ys, field = interference_field(
            p, np.array([0]), REGION, probe_length=10.0, resolution=21
        )
        iy, ix = np.unravel_index(np.argmax(field), field.shape)
        # Hottest grid point is the one nearest the sender.
        assert abs(xs[ix] - 250.0) <= 30.0 and abs(ys[iy] - 250.0) <= 30.0

    def test_field_decays_with_distance(self):
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        p = FadingRLS(links=links)
        xs, ys, field = interference_field(
            p, np.array([0]), Region.square(400.0), resolution=21
        )
        # Corner far from origin sees much less than near the origin.
        assert field[0, 0] > 100 * field[-1, -1]

    def test_longer_probe_more_vulnerable(self, paper_problem):
        s = rle_schedule(paper_problem)
        _, _, short = interference_field(paper_problem, s, REGION, probe_length=5.0, resolution=15)
        _, _, long = interference_field(paper_problem, s, REGION, probe_length=20.0, resolution=15)
        assert (long >= short - 1e-12).all()
        assert long.sum() > short.sum()

    def test_validation(self, paper_problem):
        s = rle_schedule(paper_problem)
        with pytest.raises(ValueError):
            interference_field(paper_problem, s, REGION, probe_length=0.0)
        with pytest.raises(ValueError):
            interference_field(paper_problem, s, REGION, resolution=1)


class TestAdmissibleFraction:
    def test_empty_schedule_everything_admissible(self, paper_problem):
        assert admissible_fraction(paper_problem, Schedule.empty(), REGION) == 1.0

    def test_denser_schedule_less_room(self):
        p = FadingRLS(links=paper_topology(300, seed=0))
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        sparse = rle_schedule(p)
        dense = approx_diversity_schedule(p)
        assert admissible_fraction(p, dense, REGION, resolution=30) <= admissible_fraction(
            p, sparse, REGION, resolution=30
        )

    def test_in_unit_interval(self, paper_problem):
        s = rle_schedule(paper_problem)
        frac = admissible_fraction(paper_problem, s, REGION, resolution=25)
        assert 0.0 <= frac <= 1.0


class TestVictimHotspots:
    def test_sorted_ascending_slack(self, paper_problem):
        from repro.core.baselines.naive import greedy_fading_schedule

        s = greedy_fading_schedule(paper_problem)
        spots = victim_hotspots(paper_problem, s, top_k=5)
        slacks = [sl for _, sl in spots]
        assert slacks == sorted(slacks)
        assert len(spots) <= 5

    def test_members_of_schedule(self, paper_problem):
        s = rle_schedule(paper_problem)
        for link, _ in victim_hotspots(paper_problem, s):
            assert link in s

    def test_negative_slack_for_infeasible(self, tight_problem):
        spots = victim_hotspots(tight_problem, np.array([0, 1, 2]))
        assert spots[0][1] < 0

    def test_empty(self, paper_problem):
        assert victim_hotspots(paper_problem, Schedule.empty()) == []
