"""Tests for repro.io (LinkSet and result persistence)."""

import json

import numpy as np
import pytest

from repro.core.rle import rle_schedule
from repro.io.linksets import (
    linkset_from_csv,
    linkset_from_json,
    linkset_to_csv,
    linkset_to_json,
)
from repro.io.results import schedule_to_dict, sweep_to_dict, write_json
from repro.network.links import LinkSet
from repro.network.topology import paper_topology, random_rates_topology


class TestCsvRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        links = random_rates_topology(40, seed=0)
        path = tmp_path / "links.csv"
        linkset_to_csv(links, path)
        back = linkset_from_csv(path)
        np.testing.assert_array_equal(back.senders, links.senders)
        np.testing.assert_array_equal(back.receivers, links.receivers)
        np.testing.assert_array_equal(back.rates, links.rates)

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        linkset_to_csv(LinkSet.empty(), path)
        assert len(linkset_from_csv(path)) == 0

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            linkset_from_csv(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sx,sy,rx,ry,rate\n1,2,3\n")
        with pytest.raises(ValueError, match="5 fields"):
            linkset_from_csv(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sx,sy,rx,ry,rate\n1,2,3,4,x\n")
        with pytest.raises(ValueError):
            linkset_from_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            linkset_from_csv(path)


class TestJsonRoundtrip:
    def test_exact_roundtrip(self, tmp_path):
        links = random_rates_topology(25, seed=1)
        path = tmp_path / "links.json"
        linkset_to_json(links, path)
        back = linkset_from_json(path)
        np.testing.assert_array_equal(back.senders, links.senders)
        np.testing.assert_array_equal(back.rates, links.rates)

    def test_default_rate(self, tmp_path):
        path = tmp_path / "links.json"
        path.write_text(json.dumps({"links": [{"sender": [0, 0], "receiver": [1, 0]}]}))
        back = linkset_from_json(path)
        assert back.rates[0] == 1.0

    def test_missing_links_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="links"):
            linkset_from_json(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"links": [{"sender": [0, 0]}]}))
        with pytest.raises(ValueError, match="malformed"):
            linkset_from_json(path)


class TestResultSerialisation:
    def test_schedule_to_dict_full(self):
        from repro.core.problem import FadingRLS
        from repro.sim.montecarlo import simulate_schedule

        p = FadingRLS(links=paper_topology(30, seed=0))
        s = rle_schedule(p)
        r = simulate_schedule(p, s, n_trials=50, seed=1)
        d = schedule_to_dict(s, p, r)
        assert d["algorithm"] == "rle"
        assert d["feasible"] is True
        assert d["simulation"]["n_trials"] == 50
        # Everything must be JSON-encodable.
        json.dumps(d)

    def test_schedule_to_dict_minimal(self):
        from repro.core.schedule import Schedule

        d = schedule_to_dict(Schedule(active=np.array([1, 2])))
        assert d["size"] == 2 and "feasible" not in d
        json.dumps(d)

    def test_sweep_to_dict(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.fig6 import throughput_vs_links

        cfg = ExperimentConfig(
            n_links_sweep=(20,), n_repetitions=1, n_trials=20
        )
        sweep = throughput_vs_links(cfg)
        d = sweep_to_dict(sweep)
        assert d["x_values"] == [20.0]
        assert set(d["series"]) == {"ldp", "rle"}
        json.dumps(d)

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json({"a": 1}, path)
        assert json.loads(path.read_text()) == {"a": 1}
