"""Tests for the queue-stability metamorphic relations."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.verify.fuzz import Scenario
from repro.verify.harness import all_checks
from repro.verify.metamorphic import METAMORPHIC_RELATIONS
from repro.verify.stability import (
    CODE_CONSERVATION,
    CODE_LAMBDA_DRAIN,
    CODE_SERVICE_CAPACITY,
    _workload_problem,
    relation_lambda_drain,
    relation_service_capacity,
)


def _scenario(n=10, seed=3, **problem_kwargs):
    problem = FadingRLS(links=paper_topology(n, seed=seed), **problem_kwargs)
    return Scenario(name=f"t-{n}-{seed}", family="paper", problem=problem, seed=seed)


class TestRegistration:
    def test_relations_registered(self):
        assert METAMORPHIC_RELATIONS["lambda-drain"] is relation_lambda_drain
        assert METAMORPHIC_RELATIONS["service-capacity"] is relation_service_capacity

    def test_relations_reach_the_harness(self):
        assert {"lambda-drain", "service-capacity"} <= set(all_checks())


class TestCleanScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lambda_drain_passes(self, seed):
        assert relation_lambda_drain(_scenario(seed=seed)) == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_service_capacity_passes(self, seed):
        assert relation_service_capacity(_scenario(seed=seed)) == []

    def test_relations_skip_unserviceable_instances(self):
        # Noise so large no link can ever meet its budget.
        scenario = _scenario(n=4, noise=1e12)
        assert _workload_problem(scenario.problem) is None
        assert relation_lambda_drain(scenario) == []
        assert relation_service_capacity(scenario) == []

    def test_restriction_caps_instance_size(self):
        scenario = _scenario(n=40)
        restricted = _workload_problem(scenario.problem)
        assert restricted is not None
        assert restricted.n_links <= 12


class TestFaultDetection:
    """Each relation fires on a simulator whose dynamics are broken."""

    def test_lambda_drain_detects_no_service(self, monkeypatch):
        """A scheduler that never schedules anyone must trip the drain oracle."""
        from repro.core.schedule import Schedule
        import repro.core.base as core_base

        real = core_base.get_scheduler

        def broken(name):
            if name == "rle":
                return lambda problem, **kw: Schedule.empty("rle")
            return real(name)

        import repro.workload.queues as queues

        monkeypatch.setattr(queues, "get_scheduler", broken)
        mismatches = relation_lambda_drain(_scenario())
        assert len(mismatches) == 1
        assert mismatches[0].code == CODE_LAMBDA_DRAIN

    def test_reason_codes_are_stable_strings(self):
        assert CODE_LAMBDA_DRAIN == "lambda-drain-violation"
        assert CODE_SERVICE_CAPACITY == "service-capacity-violation"
        assert CODE_CONSERVATION == "packet-conservation-violation"
