"""Tests for repro.geometry.region."""

import numpy as np
import pytest

from repro.geometry.region import Region


class TestConstruction:
    def test_square(self):
        r = Region.square(500.0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0.0, 0.0, 500.0, 500.0)

    def test_square_with_origin(self):
        r = Region.square(10.0, origin=(5.0, -5.0))
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (5.0, -5.0, 15.0, 5.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Region.square(-1.0)

    def test_dimensions(self):
        r = Region(1, 2, 4, 6)
        assert r.width == 3 and r.height == 4
        assert r.area == 12
        assert r.diagonal == pytest.approx(5.0)


class TestContains:
    def test_inside_outside(self):
        r = Region.square(10.0)
        mask = r.contains([[5.0, 5.0], [11.0, 5.0], [0.0, 0.0]])
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_tolerance(self):
        r = Region.square(10.0)
        assert not r.contains([[10.5, 5.0]])[0]
        assert r.contains([[10.5, 5.0]], tol=1.0)[0]


class TestSampling:
    def test_count_and_bounds(self):
        r = Region.square(500.0)
        pts = r.sample_uniform(1000, seed=0)
        assert pts.shape == (1000, 2)
        assert r.contains(pts).all()

    def test_reproducible(self):
        r = Region.square(100.0)
        np.testing.assert_array_equal(r.sample_uniform(10, seed=5), r.sample_uniform(10, seed=5))

    def test_zero(self):
        assert Region.square(1.0).sample_uniform(0).shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Region.square(1.0).sample_uniform(-1)

    def test_covers_region_roughly_uniformly(self):
        r = Region(10, 20, 20, 40)
        pts = r.sample_uniform(4000, seed=1)
        # Mean should be near the centre.
        assert np.allclose(pts.mean(axis=0), [15.0, 30.0], atol=1.0)


class TestClampExpand:
    def test_clamp(self):
        r = Region.square(10.0)
        out = r.clamp([[-5.0, 5.0], [15.0, 12.0]])
        np.testing.assert_allclose(out, [[0.0, 5.0], [10.0, 10.0]])

    def test_expanded(self):
        r = Region.square(10.0).expanded(2.0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (-2.0, -2.0, 12.0, 12.0)

    def test_expand_negative_rejected(self):
        with pytest.raises(ValueError):
            Region.square(1.0).expanded(-0.1)
