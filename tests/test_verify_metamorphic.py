"""Tests for the metamorphic-relation registry (repro.verify.metamorphic)."""

import pytest

from repro.verify.fuzz import FAMILIES, make_scenario
from repro.verify.metamorphic import (
    CODE_SCALE_VARIANCE,
    METAMORPHIC_RELATIONS,
    register_relation,
    relation_eps_monotonicity,
    relation_interferer_monotonicity,
    relation_scale_invariance,
    relation_subset_feasibility,
)
from repro.verify import channels  # noqa: F401  (registers channel relations)
from repro.verify import stability  # noqa: F401  (registers queue relations)


class TestRegistry:
    def test_all_relations_registered(self):
        assert set(METAMORPHIC_RELATIONS) == {
            "geometry-scale-invariance",
            "eps-monotonicity",
            "interferer-monotonicity",
            "subset-feasibility",
            "power-scale-invariance",
            # queue-stability relations (repro.verify.stability)
            "lambda-drain",
            "service-capacity",
            # channel-law relations (repro.verify.channels)
            "shadowing-zero-recovers-rayleigh",
            "nakagami-unit-closed-form",
            "nakagami-m-monotonicity",
        }

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_relation("eps-monotonicity")(lambda s: [])


class TestRelationsHoldOnSeededScenarios:
    """The relations are paper theorems: they must hold on every family."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("index", [0, 1])
    def test_all_relations_pass(self, family, index):
        scenario = make_scenario(family, index, root_seed=0)
        for name, relation in METAMORPHIC_RELATIONS.items():
            assert relation(scenario) == [], f"{name} fired on {scenario.name}"


class TestFaultInjection:
    """A corrupted cached matrix must trip the invariants by name."""

    def test_scale_invariance_catches_cache_corruption(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        scenario.problem.interference_matrix()[2, 5] += 0.1
        mismatches = relation_scale_invariance(scenario)
        assert mismatches, "corrupted F went undetected"
        assert all(m.code == CODE_SCALE_VARIANCE for m in mismatches)
        assert all(m.check == "geometry-scale-invariance" for m in mismatches)

    def test_mismatch_names_scenario(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        scenario.problem.interference_matrix()[2, 5] += 0.1
        m = relation_scale_invariance(scenario)[0]
        assert m.scenario == scenario.name
        assert "delta" in m.message or "changed" in m.message


class TestIndividualRelations:
    def test_eps_monotonicity_clean(self):
        scenario = make_scenario("dense-cluster", 0, root_seed=1)
        assert relation_eps_monotonicity(scenario) == []

    def test_interferer_monotonicity_handles_full_witness(self):
        # A well-separated instance where the witness set is everything:
        # the relation must carve out an outsider rather than skip.
        scenario = make_scenario("paper", 0, root_seed=0, n_links=4)
        assert relation_interferer_monotonicity(scenario) == []

    def test_subset_feasibility_clean(self):
        scenario = make_scenario("near-duplicate", 1, root_seed=0)
        assert relation_subset_feasibility(scenario) == []

    def test_noise_skips_scale_invariance(self):
        from dataclasses import replace

        scenario = make_scenario("paper", 0, root_seed=0)
        noisy = replace(
            scenario,
            problem=scenario.problem.with_params(noise=1e-9),
        )
        assert relation_scale_invariance(noisy) == []
