"""Tests for the deterministic-SINR machinery shared by the baselines."""

import numpy as np

from repro.core.baselines.deterministic import (
    affectance_matrix,
    deterministic_informed,
    deterministic_is_feasible,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestAffectanceMatrix:
    def test_log1p_relation_to_interference_factors(self, paper_problem):
        """F = log1p(A): the fading and deterministic models share form."""
        a = affectance_matrix(paper_problem)
        f = paper_problem.interference_matrix()
        np.testing.assert_allclose(f, np.log1p(a))

    def test_diagonal_zero(self, paper_problem):
        assert (np.diag(affectance_matrix(paper_problem)) == 0).all()

    def test_cached(self, paper_problem):
        assert affectance_matrix(paper_problem) is affectance_matrix(paper_problem)

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert affectance_matrix(p).shape == (0, 0)


class TestDeterministicFeasibility:
    def test_matches_sinr_threshold(self, tight_problem):
        """Affectance budget 1 is exactly SINR >= gamma_th."""
        from repro.channel.deterministic import deterministic_success

        active = np.array([0, 1, 2])
        by_affectance = deterministic_informed(tight_problem, active)
        by_sinr = deterministic_success(
            tight_problem.distances(), active, tight_problem.alpha, tight_problem.gamma_th
        )
        np.testing.assert_array_equal(by_affectance[active], by_sinr)

    def test_single_link_feasible(self, tight_problem):
        assert deterministic_is_feasible(tight_problem, [0])

    def test_deterministic_weaker_than_fading(self):
        """Any fading-feasible schedule is deterministically feasible
        (gamma_eps < 1 makes the fading budget stricter); the converse
        fails."""
        for seed in range(5):
            p = FadingRLS(links=paper_topology(100, seed=seed))
            from repro.core.rle import rle_schedule

            s = rle_schedule(p)
            assert p.is_feasible(s.active)
            assert deterministic_is_feasible(p, s.active)

    def test_fading_stricter_example(self):
        """A concrete schedule that passes deterministic but fails fading."""
        # Two links: interference tuned between the two budgets.
        # Need sum A in (gamma_eps', 1): pick A ~ 0.5 each way.
        own, alpha = 10.0, 3.0
        # A = (own/cross)^3 = 0.5 -> cross = own * 2^(1/3).
        cross = own * 2.0 ** (1.0 / 3.0)
        # Symmetric geometry with d(s_i, r_j) = cross for i != j.
        d = np.array([[own, cross], [cross, own]])
        # Build a LinkSet realising these distances on a line:
        # s0=(0,0), r0=(10,0); s1=(x+10+?, ...) -- easier: construct the
        # problem directly via a custom LinkSet with the right geometry.
        # Place the two links facing away from each other:
        #   s0=(0,0), r0=(-10,0);  s1=(c,0), r1=(c+10,0)
        # then d(s1,r0) = c+10, d(s0,r1) = c+10: choose c so c+10=cross.
        c = cross - 10.0
        links = LinkSet(
            senders=[[0.0, 0.0], [c, 0.0]],
            receivers=[[-10.0, 0.0], [c + 10.0, 0.0]],
        )
        p = FadingRLS(links=links, alpha=alpha, gamma_th=1.0, eps=0.01)
        assert deterministic_is_feasible(p, [0, 1])
        assert not p.is_feasible([0, 1])
