"""Tests for the ApproxLogN and ApproxDiversity baselines."""

import numpy as np
import pytest

from repro.core.baselines.approx_diversity import approx_diversity_c1, approx_diversity_schedule
from repro.core.baselines.approx_logn import approx_logn_candidates, approx_logn_mu, approx_logn_schedule
from repro.core.baselines.deterministic import deterministic_is_feasible
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestApproxLogN:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert approx_logn_schedule(p).size == 0

    def test_mu_smaller_than_ldp_beta(self):
        """Deterministic budget 1 >> gamma_eps -> smaller squares."""
        from repro.core.bounds import ldp_beta
        from repro.core.problem import gamma_epsilon

        assert approx_logn_mu(3.0, 1.0) < ldp_beta(3.0, 1.0, gamma_epsilon(0.01))

    def test_mu_domain(self):
        with pytest.raises(ValueError):
            approx_logn_mu(2.0, 1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_candidates_deterministically_feasible(self, seed):
        p = FadingRLS(links=paper_topology(150, seed=seed))
        for _, _, active in approx_logn_candidates(p):
            assert deterministic_is_feasible(p, active)

    def test_schedules_more_than_ldp(self):
        """The whole point: denser schedules than fading-aware LDP."""
        from repro.core.ldp import ldp_schedule

        sizes_logn, sizes_ldp = [], []
        for seed in range(5):
            p = FadingRLS(links=paper_topology(300, seed=seed))
            sizes_logn.append(approx_logn_schedule(p).size)
            sizes_ldp.append(ldp_schedule(p).size)
        assert np.mean(sizes_logn) > np.mean(sizes_ldp)

    def test_usually_fading_infeasible(self):
        """...and those denser schedules break the fading budget."""
        violations = 0
        for seed in range(5):
            p = FadingRLS(links=paper_topology(300, seed=seed))
            s = approx_logn_schedule(p)
            if not p.is_feasible(s.active):
                violations += 1
        assert violations >= 3

    def test_deterministic_output(self):
        p = FadingRLS(links=paper_topology(100, seed=1))
        a = approx_logn_schedule(p)
        b = approx_logn_schedule(p)
        np.testing.assert_array_equal(a.active, b.active)


class TestApproxDiversity:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert approx_diversity_schedule(p).size == 0

    def test_c1_smaller_than_rle(self):
        from repro.core.bounds import rle_c1
        from repro.core.problem import gamma_epsilon

        assert approx_diversity_c1(3.0, 1.0, 0.5) < rle_c1(3.0, 1.0, gamma_epsilon(0.01), 0.5)

    def test_c1_domain(self):
        with pytest.raises(ValueError):
            approx_diversity_c1(2.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            approx_diversity_c1(3.0, 1.0, 1.5)

    @pytest.mark.parametrize("seed", range(4))
    def test_deterministically_feasible(self, seed):
        p = FadingRLS(links=paper_topology(200, seed=seed))
        s = approx_diversity_schedule(p)
        assert deterministic_is_feasible(p, s.active)

    def test_schedules_more_than_rle(self):
        from repro.core.rle import rle_schedule

        more = 0
        for seed in range(5):
            p = FadingRLS(links=paper_topology(300, seed=seed))
            if approx_diversity_schedule(p).size > rle_schedule(p).size:
                more += 1
        assert more >= 4

    def test_usually_fading_infeasible(self):
        violations = 0
        for seed in range(5):
            p = FadingRLS(links=paper_topology(300, seed=seed))
            if not p.is_feasible(approx_diversity_schedule(p).active):
                violations += 1
        assert violations >= 3

    def test_includes_shortest_link(self):
        p = FadingRLS(links=paper_topology(100, seed=2))
        s = approx_diversity_schedule(p)
        assert int(np.argmin(p.links.lengths)) in s

    def test_diagnostics_account_for_all_links(self):
        p = FadingRLS(links=paper_topology(150, seed=3))
        s = approx_diversity_schedule(p)
        d = s.diagnostics
        assert s.size + d["removed_by_radius"] + d["removed_by_affectance"] == 150
