"""Tests for the Monte-Carlo simulator."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule, simulate_trials


class TestSimulateTrials:
    def test_shape(self, paper_problem):
        s = rle_schedule(paper_problem)
        out = simulate_trials(paper_problem, s, 50, seed=0)
        assert out.shape == (50, s.size)
        assert out.dtype == bool

    def test_accepts_raw_indices(self, paper_problem):
        out = simulate_trials(paper_problem, np.array([0, 1]), 10, seed=0)
        assert out.shape == (10, 2)

    def test_reproducible(self, paper_problem):
        s = rle_schedule(paper_problem)
        a = simulate_trials(paper_problem, s, 20, seed=9)
        b = simulate_trials(paper_problem, s, 20, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_lone_link_always_succeeds(self):
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        p = FadingRLS(links=links)
        out = simulate_trials(p, np.array([0]), 100, seed=0)
        assert out.all()

    def test_noise_can_break_lone_link(self):
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        p = FadingRLS(links=links)
        # Noise comparable to the mean signal: failures appear.
        out = simulate_trials(p, np.array([0]), 2000, noise=10.0**-3, seed=0)
        assert not out.all()
        assert out.any()


class TestSimulateSchedule:
    def test_result_fields(self, paper_problem):
        s = rle_schedule(paper_problem)
        r = simulate_schedule(paper_problem, s, n_trials=200, seed=1)
        assert r.algorithm == "rle"
        assert r.n_scheduled == s.size
        assert r.n_trials == 200
        assert 0 <= r.mean_failed <= s.size
        assert 0 <= r.mean_throughput <= r.scheduled_rate

    def test_feasible_schedule_rarely_fails(self, paper_problem):
        """A fading-feasible schedule fails each link w.p. <= eps, so the
        mean failure count is at most eps * K (plus MC noise)."""
        s = rle_schedule(paper_problem)
        r = simulate_schedule(paper_problem, s, n_trials=2000, seed=2)
        assert r.mean_failed <= paper_problem.eps * s.size + 3 * (r.failed_stderr + 1e-3) + 0.1

    def test_infeasible_schedule_fails_more(self):
        from repro.core.baselines.naive import all_active_schedule

        p = FadingRLS(links=paper_topology(300, seed=0))
        r = simulate_schedule(p, all_active_schedule(p), n_trials=300, seed=3)
        assert r.mean_failed > 10

    def test_empirical_matches_theorem31(self):
        """Per-link empirical success == closed-form probability."""
        p = FadingRLS(links=paper_topology(40, region_side=200, seed=4))
        active = np.arange(p.n_links)
        r = simulate_schedule(p, Schedule(active=active), n_trials=40_000, seed=5)
        analytic = p.success_probabilities(active)[active]
        np.testing.assert_allclose(r.per_link_success, analytic, atol=0.02)

    def test_expected_throughput_matches_analytic(self):
        p = FadingRLS(links=paper_topology(40, region_side=200, seed=6))
        active = np.arange(p.n_links)
        r = simulate_schedule(p, Schedule(active=active), n_trials=40_000, seed=7)
        assert r.mean_throughput == pytest.approx(
            p.expected_throughput(active), rel=0.03
        )

    def test_empty_schedule(self, paper_problem):
        r = simulate_schedule(paper_problem, Schedule.empty(), n_trials=10, seed=0)
        assert r.mean_failed == 0.0 and r.mean_throughput == 0.0
