"""CLI observability: --trace / --metrics / --profile / trace summarize."""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import SCHEMA, read_trace, summarize_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """The CLI toggles the global switch; leave no residue between tests."""
    yield
    obs.disable()
    obs.reset()


def _fig5_smoke_argv(extra):
    return [*extra, "figures", "--panel", "fig5a"]


class TestTraceFlag:
    def test_writes_schema_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(_fig5_smoke_argv(["--trace", str(path)])) == 0
        # read_trace validates every record against repro.trace.v1
        trace = read_trace(path)
        assert trace.meta["schema"] == SCHEMA
        assert trace.meta["command"] == "figures"
        assert trace.metrics is not None
        names = {s["name"] for s in trace.spans}
        assert {"cli.run", "experiment.fig5a", "runner.run_sweep"} <= names
        assert "wrote trace" in capsys.readouterr().err

    def test_root_span_is_cli_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        main(_fig5_smoke_argv(["--trace", str(path)]))
        trace = read_trace(path)
        roots = [s for s in trace.spans if s["parent"] is None]
        assert [r["name"] for r in roots] == ["cli.run"]

    def test_switch_restored_after_run(self, tmp_path):
        main(_fig5_smoke_argv(["--trace", str(tmp_path / "t.jsonl")]))
        assert not obs.is_enabled()


class TestTraceSummarize:
    def test_names_top_spans_of_fig5_smoke(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        main(_fig5_smoke_argv(["--trace", str(path)]))
        capsys.readouterr()

        assert main(["trace", "summarize", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        # golden check: the three hottest spans by total wall are the
        # enclosing stages, in order
        expected = [s.name for s in summarize_trace(read_trace(path))[:3]]
        assert expected[0] == "cli.run"
        for name in expected:
            assert name in out
        # --top 3 cuts the table after three data rows
        assert len([l for l in out.splitlines() if l and "." in l.split()[0]]) == 3

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "wat"}\n')
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestMetricsFlag:
    def test_prints_snapshot_table(self, capsys):
        assert main(_fig5_smoke_argv(["--metrics"])) == 0
        err = capsys.readouterr().err
        assert "counter" in err
        assert "mc.trials_simulated" in err
        assert "scheduler.links_admitted" in err

    def test_schedule_command_counts_admitted_links(self, capsys):
        assert main(["--metrics", "schedule", "--n-links", "20", "--algorithm",
                     "rle", "--seed", "3"]) == 0
        err = capsys.readouterr().err
        assert "scheduler.links_admitted" in err


class TestProfileFlag:
    def test_prints_cprofile_table(self, capsys):
        assert main(["--profile", "list"]) == 0
        captured = capsys.readouterr()
        assert "ncalls" in captured.err
        assert "ldp" in captured.out  # the command itself still ran


class TestObservabilityOffByDefault:
    def test_plain_command_leaves_no_trace(self, capsys):
        assert main(["list"]) == 0
        assert not obs.is_enabled()
        assert obs.drain_spans() == []
