"""Tests for analyzers, scenario configs, the config bridge and `repro traffic`."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.problem import FadingRLS
from repro.experiments.config import ExperimentConfig
from repro.network.topology import paper_topology
from repro.sim.runner import run_workload
from repro.workload.analyzers import (
    drift_estimate,
    is_divergent,
    stability_region,
    summarize_workload,
    sweep_rates,
)
from repro.workload.generators import PoissonArrivals
from repro.workload.queues import simulate_workload
from repro.workload.scenario import WorkloadScenario, run_scenario


@pytest.fixture()
def problem():
    return FadingRLS(
        links=paper_topology(6, seed=1), alpha=3.0, gamma_th=1.0, eps=0.05
    )


class TestAnalyzers:
    def test_summarize_reports_conservation_fields(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.1), "rle", n_slots=60, seed=7
        )
        stats = summarize_workload(result)
        assert stats.arrived == result.arrived
        assert stats.final_backlog == result.final_backlog
        payload = stats.to_dict()
        assert isinstance(payload["mean_delay"], (float, type(None)))

    def test_stats_nan_becomes_none(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.0), "rle", n_slots=10, seed=0
        )
        assert summarize_workload(result).to_dict()["mean_delay"] is None

    def test_drift_signs(self, problem):
        light = simulate_workload(
            problem, PoissonArrivals(0.05), "rle", n_slots=120, seed=3
        )
        heavy = simulate_workload(
            problem, PoissonArrivals(3.0), "rle", n_slots=120, seed=3
        )
        assert abs(drift_estimate(light)) < 0.05
        assert drift_estimate(heavy) > 0.5
        assert not is_divergent(light)
        assert is_divergent(heavy)

    def test_drift_tail_validation(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.1), "rle", n_slots=10, seed=0
        )
        with pytest.raises(ValueError, match="tail"):
            drift_estimate(result, tail=0.0)

    def test_sweep_orders_results_by_factor(self, problem):
        results = sweep_rates(
            problem, PoissonArrivals(0.05), "rle", [0.5, 4.0], n_slots=50, seed=2
        )
        assert len(results) == 2
        assert results[0].arrived < results[1].arrived

    def test_stability_region_brackets(self, problem):
        estimate = stability_region(
            problem,
            PoissonArrivals(0.05),
            "rle",
            factor_lo=0.5,
            factor_hi=64.0,
            n_grid=4,
            max_iter=3,
            n_slots=100,
            seed=4,
        )
        assert estimate.bracketed
        assert estimate.factor_lo < estimate.factor_star < estimate.factor_hi
        assert estimate.lam_star == pytest.approx(0.05 * estimate.factor_star)
        # Probes are (factor, drift, final_backlog, divergent) records.
        assert all(len(p) == 4 for p in estimate.probes)
        payload = estimate.to_dict()
        assert payload["n_probes"] == len(estimate.probes)

    def test_stability_region_all_stable_one_sided(self, problem):
        estimate = stability_region(
            problem,
            PoissonArrivals(0.01),
            "rle",
            factor_lo=0.5,
            factor_hi=2.0,
            n_grid=3,
            n_slots=60,
            seed=4,
        )
        assert not estimate.bracketed
        assert estimate.factor_star == 2.0

    def test_stability_region_probe_seeds_are_identity_derived(self, problem):
        """The same factor probes identically regardless of grid shape."""
        a = stability_region(
            problem, PoissonArrivals(0.05), "rle",
            factor_lo=1.0, factor_hi=4.0, n_grid=2, max_iter=0, n_slots=40, seed=6,
        )
        b = stability_region(
            problem, PoissonArrivals(0.05), "rle",
            factor_lo=1.0, factor_hi=4.0, n_grid=2, max_iter=2, n_slots=40, seed=6,
        )
        assert a.probes[0] == b.probes[0]
        assert a.probes[1] == b.probes[1]

    def test_stability_validation(self, problem):
        with pytest.raises(ValueError, match="factor_lo"):
            stability_region(
                problem, PoissonArrivals(0.05), "rle", factor_lo=2.0, factor_hi=1.0
            )
        with pytest.raises(ValueError, match="mean_rate"):
            stability_region(problem, PoissonArrivals(0.0), "rle")


class TestWorkloadScenario:
    def test_roundtrip_through_json(self):
        scenario = WorkloadScenario(
            name="x",
            n_links=5,
            arrivals=PoissonArrivals(0.07),
            stability={"factor_hi": 16.0},
        )
        blob = json.dumps(scenario.to_dict())
        assert WorkloadScenario.from_dict(json.loads(blob)) == scenario

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario key"):
            WorkloadScenario.from_dict({"n_linkz": 5})

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            WorkloadScenario(topology="mesh")

    def test_unknown_stability_option_rejected(self):
        with pytest.raises(ValueError, match="stability option"):
            WorkloadScenario(stability={"bisect_harder": True})

    def test_stability_defaults_resolve(self):
        scenario = WorkloadScenario(n_slots=123)
        options = scenario.stability_options()
        assert options["n_slots"] == 123
        assert WorkloadScenario(stability=None).stability_options() is None

    def test_run_scenario_payload(self):
        scenario = WorkloadScenario(
            name="mini",
            n_links=5,
            arrivals=PoissonArrivals(0.08),
            n_slots=50,
            stability={"factor_hi": 32.0, "n_grid": 3, "max_iter": 2, "n_slots": 60},
        )
        payload = run_scenario(scenario)
        assert payload["scenario"]["name"] == "mini"
        assert payload["stats"]["arrived"] >= 0
        assert payload["stability"]["n_probes"] >= 3

    def test_run_scenario_without_stability(self):
        scenario = WorkloadScenario(n_links=4, n_slots=20, stability=None)
        payload = run_scenario(scenario)
        assert payload["stability"] is None


class TestConfigBridge:
    def test_with_workload_replaces_knobs(self):
        cfg = ExperimentConfig().with_workload(
            arrival="spikes", rate=0.2, slots=111, policy="multislot"
        )
        assert cfg.workload_arrival == "spikes"
        assert cfg.workload_rate == 0.2
        assert cfg.workload_slots == 111
        assert cfg.workload_policy == "multislot"

    def test_with_workload_validates(self):
        cfg = ExperimentConfig()
        with pytest.raises(ValueError, match="arrival family"):
            cfg.with_workload(arrival="bursty")
        with pytest.raises(ValueError, match="rate"):
            cfg.with_workload(rate=0.0)
        with pytest.raises(ValueError, match="slots"):
            cfg.with_workload(slots=-1)
        with pytest.raises(ValueError, match="policy"):
            cfg.with_workload(policy="psychic")

    def test_arrival_process_hits_requested_mean(self):
        cfg = ExperimentConfig().with_workload(arrival="onoff", rate=0.125)
        assert cfg.arrival_process().mean_rate() == pytest.approx(0.125)

    def test_run_workload_bridge(self):
        cfg = (
            ExperimentConfig()
            .small()
            .with_workload(rate=0.05, slots=40)
        )
        links = paper_topology(6, seed=3)
        result, stats = run_workload(cfg, links=links, seed=5)
        assert result.n_links == 6
        assert stats.n_slots == 40
        assert result.arrived == result.served + result.dropped + result.final_backlog


class TestTrafficCli:
    def test_inline_flags_run(self, capsys):
        code = main(
            [
                "traffic",
                "--n-links", "5",
                "--slots", "40",
                "--rate", "0.08",
                "--no-stability",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rle/backlogged" in out
        assert "drift" in out

    def test_config_file_with_stability_and_output(self, tmp_path, capsys):
        config = {
            "name": "cli-scenario",
            "n_links": 5,
            "arrivals": {"family": "poisson", "rate": 0.08},
            "n_slots": 40,
            "stability": {"factor_hi": 32.0, "n_grid": 3, "max_iter": 2, "n_slots": 50},
        }
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps(config))
        out_path = tmp_path / "payload.json"
        code = main(
            ["traffic", "--config", str(cfg_path), "--output", str(out_path)]
        )
        assert code == 0
        assert "stability region" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["scenario"]["name"] == "cli-scenario"
        assert payload["stability"]["n_probes"] >= 3

    def test_bad_config_rejected(self, tmp_path):
        cfg_path = tmp_path / "scenario.json"
        cfg_path.write_text(json.dumps({"topology": "mesh"}))
        with pytest.raises(SystemExit, match="bad scenario config"):
            main(["traffic", "--config", str(cfg_path)])

    def test_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["traffic", "--policy", "psychic"])
