"""Tests for feasibility certificates and structural audits."""

import numpy as np
import pytest

from repro.core.certify import (
    CODE_BUDGET_EXCEEDED,
    CODE_NOISE_UNSERVICEABLE,
    AuditCheck,
    audit_ldp_structure,
    audit_rle_structure,
    certify,
)
from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.topology import paper_topology


class TestCertify:
    def test_agrees_with_is_feasible_on_feasible(self, paper_problem):
        s = rle_schedule(paper_problem)
        cert = certify(paper_problem, s)
        assert cert.feasible == paper_problem.is_feasible(s.active) is True
        assert not cert.violations()

    def test_agrees_with_is_feasible_on_infeasible(self, tight_problem):
        cert = certify(tight_problem, np.array([0, 1, 2]))
        assert not cert.feasible
        assert cert.violations()

    def test_decomposition_matches_cached_matrix(self, paper_problem):
        """The independent recomputation equals the cached-path numbers."""
        s = rle_schedule(paper_problem)
        cert = certify(paper_problem, s)
        interference = paper_problem.interference_on(s.active)
        for rb in cert.receivers:
            assert rb.total_interference == pytest.approx(interference[rb.link], rel=1e-9)
            assert rb.slack == pytest.approx(
                paper_problem.effective_budgets()[rb.link] - interference[rb.link],
                rel=1e-9,
                abs=1e-15,
            )

    def test_worst_receiver_has_min_slack(self, paper_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(paper_problem)
        cert = certify(paper_problem, s)
        assert cert.worst.slack == min(r.slack for r in cert.receivers)

    def test_top_interferers_sorted_and_capped(self, paper_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(paper_problem)
        cert = certify(paper_problem, s, top_k=2)
        for rb in cert.receivers:
            assert len(rb.top_interferers) <= 2
            factors = [f for _, f in rb.top_interferers]
            assert factors == sorted(factors, reverse=True)

    def test_empty_schedule(self, paper_problem):
        cert = certify(paper_problem, Schedule.empty())
        assert cert.feasible and cert.worst is None


class TestAuditLdp:
    def test_ldp_output_passes(self, paper_problem):
        s = ldp_schedule(paper_problem)
        audit = audit_ldp_structure(paper_problem, s)
        assert all(audit.values()), audit

    def test_rigorous_variant_passes(self):
        p = FadingRLS(links=paper_topology(120, seed=3), alpha=4.0)
        s = ldp_schedule(p, rigorous=True)
        assert all(audit_ldp_structure(p, s).values())

    def test_foreign_schedule_rejected(self, paper_problem):
        s = rle_schedule(paper_problem)
        with pytest.raises(ValueError, match="LDP"):
            audit_ldp_structure(paper_problem, s)

    def test_tampered_schedule_fails_audit(self, paper_problem):
        """Injecting an extra link into an LDP schedule breaks the
        distinct-cells or colour invariant (whichever the geometry hits)."""
        s = ldp_schedule(paper_problem)
        outsider = next(
            i for i in range(paper_problem.n_links) if i not in s
        )
        tampered = Schedule(
            active=np.append(s.active, outsider),
            algorithm="ldp",
            diagnostics=s.diagnostics,
        )
        audit = audit_ldp_structure(paper_problem, tampered)
        # The audit may still pass by luck of geometry for one outsider,
        # so check against many: at least one injection must be caught.
        caught = not all(audit.values())
        if not caught:
            for outsider in range(paper_problem.n_links):
                if outsider in s:
                    continue
                tampered = Schedule(
                    active=np.append(s.active, outsider),
                    algorithm="ldp",
                    diagnostics=s.diagnostics,
                )
                if not all(audit_ldp_structure(paper_problem, tampered).values()):
                    caught = True
                    break
        assert caught


class TestAuditRle:
    def test_rle_output_passes(self, paper_problem):
        s = rle_schedule(paper_problem)
        audit = audit_rle_structure(paper_problem, s)
        assert all(audit.values()), audit

    @pytest.mark.parametrize("c2", [0.25, 0.75])
    def test_passes_across_c2(self, c2, paper_problem):
        s = rle_schedule(paper_problem, c2=c2)
        assert all(audit_rle_structure(paper_problem, s).values())

    def test_foreign_schedule_rejected(self, paper_problem):
        s = ldp_schedule(paper_problem)
        with pytest.raises(ValueError, match="RLE"):
            audit_rle_structure(paper_problem, s)

    def test_tampered_schedule_fails(self, paper_problem):
        """Adding the closest unscheduled link violates the radius rule."""
        s = rle_schedule(paper_problem)
        dist = paper_problem.distances()
        # Find an unscheduled sender inside some scheduled link's radius.
        c1 = s.diagnostics["c1"]
        lengths = paper_problem.links.lengths
        offender = None
        for j in s.active:
            near = np.flatnonzero(dist[:, j] < c1 * lengths[j])
            near = [i for i in near if i not in s and i != j]
            if near:
                offender = near[0]
                break
        assert offender is not None
        tampered = Schedule(
            active=np.append(s.active, offender),
            algorithm="rle",
            diagnostics=s.diagnostics,
        )
        audit = audit_rle_structure(paper_problem, tampered)
        assert not audit["radius"]


class TestStructuredReasonCodes:
    """Audits and certificates must *name* what broke, not just fail."""

    def test_audit_check_truthiness_and_repr(self):
        ok = AuditCheck(code="x", passed=True)
        bad = AuditCheck(code="x", passed=False, detail="links [3]")
        assert ok and not bad
        assert "ok" in repr(ok)
        assert "FAILED" in repr(bad) and "links [3]" in repr(bad)

    def test_feasible_certificate_has_no_codes(self, paper_problem):
        s = rle_schedule(paper_problem)
        cert = certify(paper_problem, s)
        assert cert.reason_codes() == {}

    def test_infeasible_certificate_names_budget_overrun(self, tight_problem):
        cert = certify(tight_problem, np.array([0, 1, 2]))
        codes = cert.reason_codes()
        assert codes, "infeasible certificate must carry reason codes"
        # Every violating link shows up under exactly one code.
        flagged = sorted(i for links in codes.values() for i in links)
        assert flagged == sorted(r.link for r in cert.violations())
        assert set(codes) <= {CODE_BUDGET_EXCEEDED, CODE_NOISE_UNSERVICEABLE}

    def test_receiver_failure_code_noise_vs_interference(self):
        from repro.core.certify import ReceiverBudget

        fine = ReceiverBudget(
            link=0, budget=1.0, total_interference=0.5, slack=0.5, top_interferers=[]
        )
        overrun = ReceiverBudget(
            link=1, budget=1.0, total_interference=2.0, slack=-1.0, top_interferers=[]
        )
        dead = ReceiverBudget(
            link=2, budget=-0.1, total_interference=0.0, slack=-0.1, top_interferers=[]
        )
        assert fine.failure_code is None
        assert overrun.failure_code == CODE_BUDGET_EXCEEDED
        assert dead.failure_code == CODE_NOISE_UNSERVICEABLE

    def test_tampered_ldp_audit_carries_code_and_detail(self, paper_problem):
        s = ldp_schedule(paper_problem)
        for outsider in range(paper_problem.n_links):
            if outsider in s:
                continue
            tampered = Schedule(
                active=np.append(s.active, outsider),
                algorithm="ldp",
                diagnostics=s.diagnostics,
            )
            audit = audit_ldp_structure(paper_problem, tampered)
            failing = [c for c in audit.values() if not c]
            if failing:
                for check in failing:
                    assert check.code in {
                        "ldp-color-mismatch",
                        "ldp-duplicate-cell",
                        "ldp-length-bound-exceeded",
                    }
                    assert check.detail  # names the offending links
                return
        pytest.fail("no injected outsider tripped the LDP audit")

    def test_tampered_rle_audit_carries_code_and_detail(self, paper_problem):
        s = rle_schedule(paper_problem)
        dist = paper_problem.distances()
        c1 = s.diagnostics["c1"]
        lengths = paper_problem.links.lengths
        offender = None
        for j in s.active:
            near = np.flatnonzero(dist[:, j] < c1 * lengths[j])
            near = [i for i in near if i not in s and i != j]
            if near:
                offender = near[0]
                break
        assert offender is not None
        tampered = Schedule(
            active=np.append(s.active, offender),
            algorithm="rle",
            diagnostics=s.diagnostics,
        )
        check = audit_rle_structure(paper_problem, tampered)["radius"]
        assert not check
        assert check.code == "rle-radius-violation"
        assert "pairs" in check.detail
