"""Tests for feasibility certificates and structural audits."""

import numpy as np
import pytest

from repro.core.certify import audit_ldp_structure, audit_rle_structure, certify
from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.topology import paper_topology


class TestCertify:
    def test_agrees_with_is_feasible_on_feasible(self, paper_problem):
        s = rle_schedule(paper_problem)
        cert = certify(paper_problem, s)
        assert cert.feasible == paper_problem.is_feasible(s.active) is True
        assert not cert.violations()

    def test_agrees_with_is_feasible_on_infeasible(self, tight_problem):
        cert = certify(tight_problem, np.array([0, 1, 2]))
        assert not cert.feasible
        assert cert.violations()

    def test_decomposition_matches_cached_matrix(self, paper_problem):
        """The independent recomputation equals the cached-path numbers."""
        s = rle_schedule(paper_problem)
        cert = certify(paper_problem, s)
        interference = paper_problem.interference_on(s.active)
        for rb in cert.receivers:
            assert rb.total_interference == pytest.approx(interference[rb.link], rel=1e-9)
            assert rb.slack == pytest.approx(
                paper_problem.effective_budgets()[rb.link] - interference[rb.link],
                rel=1e-9,
                abs=1e-15,
            )

    def test_worst_receiver_has_min_slack(self, paper_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(paper_problem)
        cert = certify(paper_problem, s)
        assert cert.worst.slack == min(r.slack for r in cert.receivers)

    def test_top_interferers_sorted_and_capped(self, paper_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(paper_problem)
        cert = certify(paper_problem, s, top_k=2)
        for rb in cert.receivers:
            assert len(rb.top_interferers) <= 2
            factors = [f for _, f in rb.top_interferers]
            assert factors == sorted(factors, reverse=True)

    def test_empty_schedule(self, paper_problem):
        cert = certify(paper_problem, Schedule.empty())
        assert cert.feasible and cert.worst is None


class TestAuditLdp:
    def test_ldp_output_passes(self, paper_problem):
        s = ldp_schedule(paper_problem)
        audit = audit_ldp_structure(paper_problem, s)
        assert all(audit.values()), audit

    def test_rigorous_variant_passes(self):
        p = FadingRLS(links=paper_topology(120, seed=3), alpha=4.0)
        s = ldp_schedule(p, rigorous=True)
        assert all(audit_ldp_structure(p, s).values())

    def test_foreign_schedule_rejected(self, paper_problem):
        s = rle_schedule(paper_problem)
        with pytest.raises(ValueError, match="LDP"):
            audit_ldp_structure(paper_problem, s)

    def test_tampered_schedule_fails_audit(self, paper_problem):
        """Injecting an extra link into an LDP schedule breaks the
        distinct-cells or colour invariant (whichever the geometry hits)."""
        s = ldp_schedule(paper_problem)
        outsider = next(
            i for i in range(paper_problem.n_links) if i not in s
        )
        tampered = Schedule(
            active=np.append(s.active, outsider),
            algorithm="ldp",
            diagnostics=s.diagnostics,
        )
        audit = audit_ldp_structure(paper_problem, tampered)
        # The audit may still pass by luck of geometry for one outsider,
        # so check against many: at least one injection must be caught.
        caught = not all(audit.values())
        if not caught:
            for outsider in range(paper_problem.n_links):
                if outsider in s:
                    continue
                tampered = Schedule(
                    active=np.append(s.active, outsider),
                    algorithm="ldp",
                    diagnostics=s.diagnostics,
                )
                if not all(audit_ldp_structure(paper_problem, tampered).values()):
                    caught = True
                    break
        assert caught


class TestAuditRle:
    def test_rle_output_passes(self, paper_problem):
        s = rle_schedule(paper_problem)
        audit = audit_rle_structure(paper_problem, s)
        assert all(audit.values()), audit

    @pytest.mark.parametrize("c2", [0.25, 0.75])
    def test_passes_across_c2(self, c2, paper_problem):
        s = rle_schedule(paper_problem, c2=c2)
        assert all(audit_rle_structure(paper_problem, s).values())

    def test_foreign_schedule_rejected(self, paper_problem):
        s = ldp_schedule(paper_problem)
        with pytest.raises(ValueError, match="RLE"):
            audit_rle_structure(paper_problem, s)

    def test_tampered_schedule_fails(self, paper_problem):
        """Adding the closest unscheduled link violates the radius rule."""
        s = rle_schedule(paper_problem)
        dist = paper_problem.distances()
        # Find an unscheduled sender inside some scheduled link's radius.
        c1 = s.diagnostics["c1"]
        lengths = paper_problem.links.lengths
        offender = None
        for j in s.active:
            near = np.flatnonzero(dist[:, j] < c1 * lengths[j])
            near = [i for i in near if i not in s and i != j]
            if near:
                offender = near[0]
                break
        assert offender is not None
        tampered = Schedule(
            active=np.append(s.active, offender),
            algorithm="rle",
            diagnostics=s.diagnostics,
        )
        audit = audit_rle_structure(paper_problem, tampered)
        assert not audit["radius"]
