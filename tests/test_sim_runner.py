"""Tests for the batched experiment runner."""

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.network.topology import paper_topology
from repro.sim.runner import run_schedulers


def small_workload(n=40):
    def make(seed):
        return paper_topology(n, seed=seed)

    return make


class TestRunSchedulers:
    def test_structure(self):
        schedulers = {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")}
        out = run_schedulers(
            schedulers, small_workload(), n_repetitions=3, n_trials=50, root_seed=1
        )
        assert set(out) == {"rle", "ldp"}
        for r in out.values():
            assert r.n_repetitions == 3
            assert len(r.per_rep) == 3

    def test_reproducible(self):
        schedulers = {"rle": get_scheduler("rle")}
        a = run_schedulers(schedulers, small_workload(), n_repetitions=2, n_trials=50, root_seed=7)
        b = run_schedulers(schedulers, small_workload(), n_repetitions=2, n_trials=50, root_seed=7)
        assert a["rle"].mean_throughput == b["rle"].mean_throughput
        assert a["rle"].mean_failed == b["rle"].mean_failed

    def test_root_seed_changes_results(self):
        schedulers = {"rle": get_scheduler("rle")}
        a = run_schedulers(schedulers, small_workload(), n_repetitions=2, n_trials=50, root_seed=1)
        b = run_schedulers(schedulers, small_workload(), n_repetitions=2, n_trials=50, root_seed=2)
        assert a["rle"].mean_throughput != b["rle"].mean_throughput

    def test_paired_instances(self):
        """All schedulers must see the same workload per repetition:
        all_active's scheduled count equals the workload size for every
        repetition, and greedy's is <= it."""
        schedulers = {
            "all_active": get_scheduler("all_active"),
            "greedy": get_scheduler("greedy"),
        }
        out = run_schedulers(schedulers, small_workload(25), n_repetitions=2, n_trials=10)
        for rep in range(2):
            assert out["all_active"].per_rep[rep].n_scheduled == 25
            assert out["greedy"].per_rep[rep].n_scheduled <= 25

    def test_scheduler_kwargs(self):
        from repro.core.rle import rle_schedule

        out = run_schedulers(
            {"rle": rle_schedule},
            small_workload(),
            n_repetitions=1,
            n_trials=10,
            scheduler_kwargs={"rle": {"c2": 0.3}},
        )
        assert out["rle"].n_repetitions == 1

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            run_schedulers({}, small_workload(), n_repetitions=0)

    def test_alpha_passed_through(self):
        """Higher alpha -> more links schedulable by RLE (Fig. 6b shape)."""
        schedulers = {"rle": get_scheduler("rle")}
        lo = run_schedulers(schedulers, small_workload(120), n_repetitions=3, n_trials=20, alpha=2.5)
        hi = run_schedulers(schedulers, small_workload(120), n_repetitions=3, n_trials=20, alpha=4.5)
        assert hi["rle"].mean_scheduled > lo["rle"].mean_scheduled


class TestRunTrace:
    def _trace(self, threshold=0.0, n=30, steps=4, seed=21):
        from repro.network.mobility import random_waypoint_delta_trace

        return random_waypoint_delta_trace(
            n, steps, speed_range=(2.0, 5.0), move_threshold=threshold, seed=seed
        )

    def test_from_scratch_over_delta_trace(self):
        from repro.sim.runner import run_trace

        steps = run_trace("rle", self._trace())
        assert len(steps) == 4
        assert all(s.feasible for s in steps)
        assert all(s.expected_throughput > 0 for s in steps)

    def test_from_scratch_over_plain_linkset_sequence(self):
        from repro.network.mobility import random_waypoint_trace
        from repro.sim.runner import run_trace

        trace = random_waypoint_trace(25, 3, seed=5)
        steps = run_trace("rle", trace)
        assert len(steps) == 3
        assert all(s.feasible for s in steps)

    def test_incremental_matches_scratch_on_first_step(self):
        from repro.sim.runner import run_trace

        trace = self._trace()
        inc = run_trace("rle", trace, incremental=True)
        scr = run_trace("rle", trace, incremental=False)
        assert len(inc) == len(scr) == 4
        # Step 0 is a full run in both modes: identical schedule.
        np.testing.assert_array_equal(
            np.sort(inc[0].schedule.active), np.sort(scr[0].schedule.active)
        )
        assert inc[0].scheduled_rate == scr[0].scheduled_rate
        assert all(s.feasible for s in inc)

    def test_incremental_requires_delta_trace(self):
        from repro.network.mobility import random_waypoint_trace
        from repro.sim.runner import run_trace

        trace = random_waypoint_trace(20, 3, seed=1)
        with pytest.raises(TypeError):
            run_trace("rle", trace, incremental=True)

    def test_incremental_repairs_after_first_step(self):
        from repro.sim.runner import run_trace

        steps = run_trace("rle", self._trace(threshold=10.0), incremental=True)
        modes = [s.schedule.diagnostics["mode"] for s in steps]
        assert modes[0] == "full"
        assert "repair" in modes[1:]

    def test_scheduler_callable_accepted(self):
        from repro.core.rle import rle_schedule
        from repro.sim.runner import run_trace

        steps = run_trace(rle_schedule, self._trace(), incremental=True)
        assert all(s.feasible for s in steps)
