"""Meta tests: documentation coverage of the public API.

Every public module, class, and function under ``repro`` must carry a
docstring (deliverable (e): doc comments on every public item).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: undocumented public items: {undocumented}"


def test_public_api_exports_resolve():
    """Every name in a package's __all__ must be importable from it."""
    for module in MODULES:
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name!r}"
