"""Channel/power threading through the experiment pipeline.

``with_channel`` validation, checkpoint-key sensitivity, the
``power_sweep`` grid, and — the PR's acceptance bar — bit-identical
``run_schedulers``/fig5 results across backends and worker counts for
a non-default (channel, power_policy) pair.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.base import get_scheduler
from repro.experiments.config import ExperimentConfig, TopologyWorkload
from repro.experiments.power_sweep import power_sweep
from repro.sim.parallel import WorkUnit, checkpoint_key
from repro.sim.runner import run_schedulers

WORKLOAD = TopologyWorkload(n_links=20)
SCHEDULERS = {"greedy": get_scheduler("greedy"), "rle": get_scheduler("rle")}


class TestWithChannel:
    def test_canonicalises_spec(self):
        cfg = ExperimentConfig().with_channel(channel="shadowing:sigma_db=6")
        assert cfg.channel == "shadowing:sigma_db=6,static=false"
        assert cfg.power_policy == "uniform"  # untouched

    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.channel == "rayleigh"
        assert cfg.power_policy == "uniform"

    def test_policy_only(self):
        cfg = ExperimentConfig().with_channel(power_policy="min_uniform")
        assert cfg.channel == "rayleigh"
        assert cfg.power_policy == "min_uniform"

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown channel law"):
            ExperimentConfig().with_channel(channel="bogus")
        with pytest.raises(ValueError, match="bad parameters"):
            ExperimentConfig().with_channel(channel="nakagami:q=3")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown power policy"):
            ExperimentConfig().with_channel(power_policy="loudest_wins")


def _unit(**overrides):
    base = dict(
        tag=0,
        rep=0,
        name="rle",
        scheduler=get_scheduler("rle"),
        workload=WORKLOAD,
        n_trials=50,
        alpha=3.0,
        gamma_th=1.0,
        eps=0.01,
        root_seed=7,
    )
    base.update(overrides)
    return WorkUnit(**base)


class TestCheckpointKey:
    def test_channel_changes_key(self):
        assert checkpoint_key(_unit()) != checkpoint_key(
            _unit(channel="nakagami:m=2")
        )

    def test_power_policy_changes_key(self):
        assert checkpoint_key(_unit()) != checkpoint_key(
            _unit(power_policy="distance_proportional")
        )

    def test_none_equals_canonical_rayleigh(self):
        assert checkpoint_key(_unit(channel=None)) == checkpoint_key(
            _unit(channel="rayleigh")
        )

    def test_spec_canonicalised_before_hashing(self):
        assert checkpoint_key(_unit(channel="shadowing:sigma_db=6")) == checkpoint_key(
            _unit(channel="shadowing:sigma_db=6,static=false")
        )

    def test_backend_excluded(self):
        assert checkpoint_key(_unit(backend="numpy")) == checkpoint_key(
            _unit(backend="sharedmem")
        )


def _run(*, backend="numpy", n_jobs=1):
    return run_schedulers(
        SCHEDULERS,
        WORKLOAD,
        n_repetitions=2,
        n_trials=50,
        root_seed=11,
        n_jobs=n_jobs,
        backend=backend,
        channel="shadowing:sigma_db=6",
        power_policy="distance_proportional",
    )


def _assert_identical(got, want):
    assert got.keys() == want.keys()
    for name in want:
        for a, b in zip(got[name].per_rep, want[name].per_rep):
            assert a.mean_failed == b.mean_failed
            assert a.mean_throughput == b.mean_throughput
            assert np.array_equal(a.per_link_success, b.per_link_success)
            assert np.array_equal(a.active_indices, b.active_indices)


class TestBitInvariance:
    """Acceptance: non-default channel+policy results are bit-identical
    across compute backends and worker counts."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return _run(backend="numpy", n_jobs=1)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["numpy", "sharedmem"])
    def test_backend_jobs_grid(self, baseline, backend, n_jobs):
        _assert_identical(_run(backend=backend, n_jobs=n_jobs), baseline)

    def test_channel_actually_changes_results(self, baseline):
        rayleigh = run_schedulers(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=2,
            n_trials=50,
            root_seed=11,
        )
        changed = any(
            a.mean_failed != b.mean_failed
            for name in baseline
            for a, b in zip(baseline[name].per_rep, rayleigh[name].per_rep)
        )
        assert changed, "shadowing+distance_proportional replayed as Rayleigh"


class TestPowerSweep:
    def test_small_grid(self):
        cfg = ExperimentConfig(n_repetitions=1, n_trials=30)
        cells = power_sweep(
            cfg,
            channels=("rayleigh", "deterministic"),
            policies=("uniform", "distance_proportional"),
            schedulers=("rle", "greedy"),
            n_links=10,
            n_repetitions=1,
            n_trials=30,
        )
        assert len(cells) == 4  # channel-major grid order
        assert [c.channel for c in cells] == [
            "rayleigh",
            "rayleigh",
            "deterministic",
            "deterministic",
        ]
        for cell in cells:
            assert set(cell.results) == {"rle", "greedy"}

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError):
            power_sweep(schedulers=("nope",), n_links=8, n_trials=10)

    def test_brute_force_capped(self):
        with pytest.raises(ValueError, match="n_links"):
            power_sweep(schedulers=("brute_force",), n_links=40, n_trials=10)


TINY = ExperimentConfig(
    n_links_sweep=(20,),
    alpha_sweep=(3.0,),
    n_links_fixed=20,
    n_repetitions=1,
    n_trials=20,
)


class TestCliAcceptance:
    """`repro fig5 --channel shadowing --power-policy distance_proportional`
    end-to-end, bit-identical across backends and worker counts."""

    @pytest.fixture(autouse=True)
    def tiny_cfg(self, monkeypatch):
        monkeypatch.setattr(ExperimentConfig, "small", lambda self: TINY)

    def _fig5(self, tmp_path, tag, backend, jobs):
        out = tmp_path / f"fig5-{tag}.json"
        assert (
            main(
                [
                    "fig5",
                    "--channel",
                    "shadowing",
                    "--power-policy",
                    "distance_proportional",
                    "--backend",
                    backend,
                    "--jobs",
                    str(jobs),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        return json.loads(out.read_text())

    def test_bit_identical_across_backends_and_jobs(self, tmp_path):
        baseline = self._fig5(tmp_path, "base", "numpy", 1)
        assert set(baseline) >= {"fig5a", "fig5b"}
        for backend, jobs in (("numpy", 2), ("sharedmem", 1), ("sharedmem", 4)):
            got = self._fig5(tmp_path, f"{backend}{jobs}", backend, jobs)
            assert got == baseline

    def test_banner_names_channel(self, tmp_path, capsys):
        self._fig5(tmp_path, "banner", "numpy", 1)
        out = capsys.readouterr().out
        assert "shadowing:sigma_db=6,static=false" in out
        assert "distance_proportional" in out
