"""Unit tests for the schedule cache: tiers, eviction, persistence.

The transparency contract (``warm_start=False`` answers are
bit-identical to uncached runs; exact hits always are) is exercised
here at the unit level; the ``cache-vs-fresh`` differential check and
the golden-trace test pin the same properties end to end.
"""

import json

import numpy as np
import pytest

from repro.cache.fingerprint import exact_key, scheduler_identity, topology_fingerprint
from repro.cache.policy import (
    CACHE_POLICIES,
    LRUPolicy,
    RepetitionAwarePolicy,
    make_policy,
)
from repro.cache.store import ScheduleCache, cache_dir_stats
from repro.core.incremental import IncrementalScheduler
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.links import LinkSet
from repro.verify.fuzz import make_scenario


def _problem(index=0, n_links=10, **overrides):
    return make_scenario("paper", index, n_links=n_links, **overrides).problem


def _relabeled(problem, seed=7):
    perm = np.random.default_rng(seed).permutation(problem.n_links)
    links = problem.links
    return FadingRLS(
        links=LinkSet(
            senders=np.asarray(links.senders)[perm],
            receivers=np.asarray(links.receivers)[perm],
            rates=np.asarray(links.rates)[perm],
        ),
        alpha=problem.alpha,
        gamma_th=problem.gamma_th,
        eps=problem.eps,
        noise=problem.noise,
        power=problem.power,
    )


def _jittered(problem, seed=5, sigma_fraction=0.02):
    """Slightly-moved endpoints: close enough for the warm tier."""
    links = problem.links
    senders = np.asarray(links.senders, dtype=float)
    receivers = np.asarray(links.receivers, dtype=float)
    mean_len = float(np.linalg.norm(receivers - senders, axis=1).mean())
    rng = np.random.default_rng(seed)
    scale = sigma_fraction * mean_len
    return FadingRLS(
        links=LinkSet(
            senders=senders + rng.normal(scale=scale, size=senders.shape),
            receivers=receivers + rng.normal(scale=scale, size=receivers.shape),
            rates=np.asarray(links.rates),
        ),
        alpha=problem.alpha,
        gamma_th=problem.gamma_th,
        eps=problem.eps,
        noise=problem.noise,
        power=problem.power,
    )


def _counting_scheduler():
    """An rle wrapper that counts how many times it actually runs."""
    calls = []

    def scheduler(problem, **kwargs):
        calls.append(problem.n_links)
        return rle_schedule(problem, **kwargs)

    return scheduler, calls


# -- tiers ----------------------------------------------------------


class TestExactTier:
    def test_miss_then_exact_hit_returns_the_same_object(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        first = cache.schedule(p, "rle")
        second = cache.schedule(p, "rle")
        assert second is first  # bit-identical by construction
        assert cache.stats["misses"] == 1
        assert cache.stats["exact_hits"] == 1
        assert [kind for kind, _ in cache.events] == ["miss", "exact"]

    def test_exact_hit_skips_the_scheduler(self):
        scheduler, calls = _counting_scheduler()
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cache.schedule(p, scheduler)
        cache.schedule(p, scheduler)
        cache.schedule(p, scheduler)
        assert len(calls) == 1

    def test_miss_matches_the_uncached_schedule_bit_for_bit(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cached = cache.schedule(p, "rle")
        fresh = rle_schedule(p)
        assert np.array_equal(cached.active, fresh.active)
        assert cached.algorithm == fresh.algorithm

    def test_scheduler_kwargs_are_part_of_the_key(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cache.schedule(p, "rle")
        cache.schedule(p, "rle", scheduler_kwargs={"c2": 0.4})
        assert cache.stats["misses"] == 2
        assert cache.stats["exact_hits"] == 0


class TestCanonicalTier:
    def test_relabeled_problem_hits_canonically(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cache.schedule(p, "rle")
        q = _relabeled(p)
        assert topology_fingerprint(p) == topology_fingerprint(q)
        result = cache.schedule(q, "rle")
        assert cache.stats["canonical_hits"] == 1
        assert result.diagnostics["cache"] == "canonical"
        assert q.is_feasible(result.active)

    def test_canonical_hit_is_reinserted_under_the_new_exact_key(self):
        scheduler, calls = _counting_scheduler()
        cache = ScheduleCache(capacity=8)
        p = _problem()
        q = _relabeled(p)
        cache.schedule(p, scheduler)
        cache.schedule(q, scheduler)
        third = cache.schedule(q, scheduler)  # now an exact hit
        assert len(calls) == 1
        assert cache.stats["exact_hits"] == 1
        assert third.diagnostics["cache"] == "canonical"

    def test_canonical_remap_preserves_the_selected_links(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        base = cache.schedule(p, "rle")
        perm = np.random.default_rng(11).permutation(p.n_links)
        links = p.links
        q = FadingRLS(
            links=LinkSet(
                senders=np.asarray(links.senders)[perm],
                receivers=np.asarray(links.receivers)[perm],
                rates=np.asarray(links.rates)[perm],
            ),
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
        )
        mapped = cache.schedule(q, "rle")
        # The physical links selected are the same set: q's label j is
        # p's label perm[j].
        assert set(perm[mapped.active]) == set(np.asarray(base.active))


class TestWarmTier:
    def test_jittered_geometry_hits_warm(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cache.schedule(p, "rle")
        q = _jittered(p)
        result = cache.schedule(q, "rle")
        assert cache.stats["warm_hits"] == 1
        assert result.diagnostics["cache"] == "warm"
        assert result.diagnostics["distance"] <= cache.warm_threshold
        assert q.is_feasible(result.active)

    def test_far_geometry_misses(self):
        cache = ScheduleCache(capacity=8, warm_threshold=0.05)
        p = _problem()
        cache.schedule(p, "rle")
        q = _jittered(p, sigma_fraction=0.5)
        cache.schedule(q, "rle")
        assert cache.stats["warm_hits"] == 0
        assert cache.stats["misses"] == 2

    def test_different_rates_never_warm_start(self):
        cache = ScheduleCache(capacity=8)
        p = _problem()
        cache.schedule(p, "rle")
        links = _jittered(p).links
        q = FadingRLS(
            links=LinkSet(
                senders=np.asarray(links.senders),
                receivers=np.asarray(links.receivers),
                rates=2.0 * np.asarray(links.rates),
            ),
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
        )
        cache.schedule(q, "rle")
        assert cache.stats["warm_hits"] == 0

    def test_warm_start_false_disables_both_fuzzy_tiers(self):
        cache = ScheduleCache(capacity=8, warm_start=False)
        p = _problem()
        cache.schedule(p, "rle")
        for q in (_relabeled(p), _jittered(p)):
            result = cache.schedule(q, "rle")
            fresh = rle_schedule(q)
            assert np.array_equal(result.active, fresh.active)  # transparent
        assert cache.stats["canonical_hits"] == 0
        assert cache.stats["warm_hits"] == 0
        assert cache.stats["misses"] == 3


# -- eviction -------------------------------------------------------


class TestEviction:
    def test_lru_evicts_the_least_recently_used(self):
        cache = ScheduleCache(capacity=2, policy="lru", warm_start=False)
        a, b, c = (_problem(i) for i in range(3))
        cache.schedule(a, "rle")
        cache.schedule(b, "rle")
        cache.schedule(a, "rle")  # refresh a; b is now LRU
        cache.schedule(c, "rle")  # evicts b
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1
        sid = scheduler_identity(rle_schedule, {})
        assert exact_key(a, sid) in cache
        assert exact_key(c, sid) in cache
        assert exact_key(b, sid) not in cache
        # The miss is logged before insertion triggers the eviction.
        assert cache.events[-1] == ("evict", topology_fingerprint(b)[:12])
        assert cache.events[-2] == ("miss", topology_fingerprint(c)[:12])

    def test_repetition_aware_protects_the_hot_entry(self):
        cache = ScheduleCache(capacity=2, policy="repetition_aware", warm_start=False)
        a, b, c = (_problem(i) for i in range(3))
        cache.schedule(a, "rle")
        for _ in range(3):
            cache.schedule(a, "rle")  # a earns hits
        cache.schedule(b, "rle")
        # LRU would now evict a (b is fresher after this next access
        # pattern); repetition-aware evicts the zero-hit b instead.
        cache.schedule(c, "rle")
        sid = scheduler_identity(rle_schedule, {})
        assert exact_key(a, sid) in cache
        assert exact_key(b, sid) not in cache

    def test_ghost_memory_seeds_reinserted_fingerprints(self):
        policy = RepetitionAwarePolicy()
        cache = ScheduleCache(capacity=1, warm_start=False)
        cache._policy = policy  # inject to inspect the ghosts
        a, b = _problem(0), _problem(1)
        cache.schedule(a, "rle")
        for _ in range(4):
            cache.schedule(a, "rle")
        cache.schedule(b, "rle")  # evicts a -> ghost with 4 hits
        assert policy.ghosts[topology_fingerprint(a)] == 4
        cache.schedule(a, "rle")  # re-inserted, seeded from the ghost
        sid = scheduler_identity(rle_schedule, {})
        entry = cache._entries[exact_key(a, sid)]
        assert entry.seeded == 4
        assert topology_fingerprint(a) not in policy.ghosts  # consumed

    def test_ghost_capacity_is_bounded_fifo(self):
        policy = RepetitionAwarePolicy(ghost_capacity=2)
        fake = type("E", (), {})
        for i in range(4):
            entry = fake()
            entry.fingerprint = f"fp{i}"
            entry.hits, entry.seeded = i, 0
            policy.record_eviction(entry)
        assert set(policy.ghosts) == {"fp2", "fp3"}

    def test_eviction_is_deterministic(self):
        def trace():
            cache = ScheduleCache(capacity=3, policy="repetition_aware", warm_start=False)
            for i in range(6):
                cache.schedule(_problem(i % 4), "rle")
            return cache.events

        assert trace() == trace()


# -- persistence ----------------------------------------------------


class TestPersistence:
    def test_round_trip_exact_hit_without_rerunning(self, tmp_path):
        first = ScheduleCache(capacity=8, directory=tmp_path)
        p = _problem()
        schedule = first.schedule(p, "rle")
        first.flush()

        second = ScheduleCache(capacity=8, directory=tmp_path)
        assert len(second) == 1
        result = second.schedule(p, "rle")
        assert second.stats["exact_hits"] == 1
        assert second.stats["misses"] == 0
        assert np.array_equal(result.active, schedule.active)
        assert result.diagnostics == {"cache": "persisted"}

    def test_damaged_files_are_skipped(self, tmp_path):
        first = ScheduleCache(capacity=8, directory=tmp_path)
        first.schedule(_problem(0), "rle")
        first.schedule(_problem(1), "rle")
        files = sorted(tmp_path.glob("*.json"))
        files[0].write_text("{not json")
        second = ScheduleCache(capacity=8, directory=tmp_path)
        assert len(second) == 1

    def test_wrong_schema_is_skipped(self, tmp_path):
        first = ScheduleCache(capacity=8, directory=tmp_path)
        first.schedule(_problem(), "rle")
        path = next(tmp_path.glob("*.json"))
        payload = json.loads(path.read_text())
        payload["schema"] = 99
        path.write_text(json.dumps(payload))
        assert len(ScheduleCache(capacity=8, directory=tmp_path)) == 0

    def test_load_respects_capacity(self, tmp_path):
        first = ScheduleCache(capacity=8, directory=tmp_path)
        for i in range(4):
            first.schedule(_problem(i), "rle")
        assert len(ScheduleCache(capacity=2, directory=tmp_path)) == 2

    def test_eviction_removes_the_persisted_file(self, tmp_path):
        cache = ScheduleCache(capacity=1, warm_start=False, directory=tmp_path)
        cache.schedule(_problem(0), "rle")
        cache.schedule(_problem(1), "rle")
        entries = [p for p in tmp_path.glob("*.json") if p.name != "_stats.json"]
        assert len(entries) == 1

    def test_cache_dir_stats(self, tmp_path):
        cache = ScheduleCache(capacity=8, directory=tmp_path)
        p = _problem()
        cache.schedule(p, "rle")
        cache.schedule(p, "rle")
        cache.flush()
        stats = cache_dir_stats(tmp_path)
        assert stats["entries"] == 1
        assert stats["damaged"] == 0
        assert stats["persisted_hits"] == 1
        assert stats["algorithms"] == {"rle": 1}
        assert stats["mean_links"] == pytest.approx(p.n_links)
        assert stats["policy"] == "repetition_aware"
        assert stats["counters"]["exact_hits"] == 1

    def test_cache_dir_stats_counts_damage(self, tmp_path):
        cache = ScheduleCache(capacity=8, directory=tmp_path)
        cache.schedule(_problem(), "rle")
        (tmp_path / "junk.json").write_text("{")
        assert cache_dir_stats(tmp_path)["damaged"] == 1

    def test_cache_dir_stats_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            cache_dir_stats(tmp_path / "nope")


# -- bookkeeping ----------------------------------------------------


class TestBookkeeping:
    def test_stats_and_hit_rate(self):
        cache = ScheduleCache(capacity=8)
        assert cache.stats["hit_rate"] == 0.0
        p = _problem()
        cache.schedule(p, "rle")
        cache.schedule(p, "rle")
        cache.schedule(p, "rle")
        stats = cache.stats
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["entries"] == 1
        assert stats["capacity"] == 8
        assert stats["policy"] == "repetition_aware"

    def test_keys_are_sorted_exact_keys(self):
        cache = ScheduleCache(capacity=8)
        for i in range(3):
            cache.schedule(_problem(i), "rle")
        keys = cache.keys()
        assert keys == sorted(keys)
        assert len(keys) == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ScheduleCache(capacity=0)
        with pytest.raises(ValueError):
            ScheduleCache(warm_threshold=-1.0)
        with pytest.raises(ValueError):
            ScheduleCache(policy="fifo")

    def test_policy_registry(self):
        assert CACHE_POLICIES == ("lru", "repetition_aware")
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("repetition_aware"), RepetitionAwarePolicy)
        with pytest.raises(ValueError):
            make_policy("arc")
        with pytest.raises(ValueError):
            RepetitionAwarePolicy(ghost_capacity=-1)


# -- warm-start engine seam -----------------------------------------


class TestEngineWarmStart:
    def test_warm_start_takes_the_repair_path(self):
        p = _problem()
        base = rle_schedule(p)
        engine = IncrementalScheduler(
            p.links,
            scheduler="rle",
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
        )
        rate = float(np.asarray(p.links.rates)[base.active].sum())
        engine.warm_start(base.active, rate)
        result = engine.schedule()
        assert result.diagnostics["mode"] == "repair"
        assert np.array_equal(result.active, np.asarray(base.active))
        assert engine.stats["full_runs"] == 0

    def test_warm_start_with_infeasible_input_repairs(self):
        p = _problem()
        engine = IncrementalScheduler(
            p.links,
            scheduler="rle",
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
            quality_bound=1e-9,  # keep the repair result, however small
        )
        engine.warm_start(np.arange(p.n_links), reference_rate=0.0)
        result = engine.schedule()
        assert p.is_feasible(result.active)

    def test_warm_start_rejects_negative_reference_rate(self):
        p = _problem()
        engine = IncrementalScheduler(p.links)
        with pytest.raises(ValueError):
            engine.warm_start([0], reference_rate=-1.0)
