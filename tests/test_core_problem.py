"""Tests for repro.core.problem — Eq. 17, Corollary 3.1, throughput."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS, gamma_epsilon, interference_factors
from repro.network.topology import paper_topology


class TestGammaEpsilon:
    def test_formula(self):
        assert gamma_epsilon(0.01) == pytest.approx(np.log(1 / 0.99))

    def test_monotone_in_eps(self):
        assert gamma_epsilon(0.1) > gamma_epsilon(0.01)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_domain(self, eps):
        with pytest.raises(ValueError):
            gamma_epsilon(eps)


class TestInterferenceFactors:
    def test_diagonal_zero(self):
        d = np.array([[10.0, 50.0], [50.0, 10.0]])
        f = interference_factors(d, alpha=3.0, gamma_th=1.0)
        np.testing.assert_array_equal(np.diag(f), 0.0)

    def test_formula_eq17(self):
        d = np.array([[10.0, 40.0], [30.0, 20.0]])
        f = interference_factors(d, alpha=3.0, gamma_th=2.0)
        # f[0, 1]: sender 0 onto receiver 1 (own length d_11 = 20, cross 40).
        assert f[0, 1] == pytest.approx(np.log(1 + 2.0 * (20.0 / 40.0) ** 3))
        # f[1, 0]: sender 1 onto receiver 0 (own length 10, cross 30).
        assert f[1, 0] == pytest.approx(np.log(1 + 2.0 * (10.0 / 30.0) ** 3))

    def test_closer_interferer_larger_factor(self):
        d = np.array([[10.0, 20.0, 0.0], [0.0, 10.0, 0.0], [0.0, 40.0, 10.0]])
        d[d == 0] = 500.0
        f = interference_factors(d, alpha=3.0, gamma_th=1.0)
        assert f[0, 1] > f[2, 1]

    def test_empty(self):
        assert interference_factors(np.zeros((0, 0)), 3.0, 1.0).shape == (0, 0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            interference_factors(np.ones((2, 3)), 3.0, 1.0)


class TestFadingRLSConstruction:
    def test_defaults(self, tiny_links):
        p = FadingRLS(links=tiny_links)
        assert p.alpha == 3.0 and p.gamma_th == 1.0 and p.eps == 0.01

    def test_bad_params(self, tiny_links):
        with pytest.raises(ValueError):
            FadingRLS(links=tiny_links, alpha=-1.0)
        with pytest.raises(ValueError):
            FadingRLS(links=tiny_links, gamma_th=0.0)
        with pytest.raises(ValueError):
            FadingRLS(links=tiny_links, eps=0.0)

    def test_links_type_checked(self):
        with pytest.raises(TypeError):
            FadingRLS(links=[[0, 0]])

    def test_caches_are_stable(self, tiny_problem):
        assert tiny_problem.distances() is tiny_problem.distances()
        assert tiny_problem.interference_matrix() is tiny_problem.interference_matrix()


class TestActiveMask:
    def test_from_indices(self, tiny_problem):
        m = tiny_problem.active_mask([0, 2])
        np.testing.assert_array_equal(m, [True, False, True])

    def test_from_bool(self, tiny_problem):
        m = tiny_problem.active_mask(np.array([True, False, True]))
        np.testing.assert_array_equal(m, [True, False, True])

    def test_out_of_range(self, tiny_problem):
        with pytest.raises(IndexError):
            tiny_problem.active_mask([7])

    def test_wrong_bool_shape(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.active_mask(np.array([True]))


class TestFeasibility:
    def test_separated_links_feasible(self, tiny_problem):
        assert tiny_problem.is_feasible([0, 1, 2])

    def test_tight_links_infeasible(self, tight_problem):
        assert not tight_problem.is_feasible([0, 1, 2])

    def test_single_link_always_feasible(self, tight_problem):
        for i in range(3):
            assert tight_problem.is_feasible([i])

    def test_empty_feasible(self, tight_problem):
        assert tight_problem.is_feasible([])

    def test_feasibility_hereditary(self):
        """Any subset of a feasible set is feasible (monotonicity)."""
        links = paper_topology(12, region_side=200, seed=0)
        p = FadingRLS(links=links)
        # Find some feasible pair set via the greedy baseline.
        from repro.core.baselines.naive import greedy_fading_schedule

        full = greedy_fading_schedule(p).active
        assert p.is_feasible(full)
        for i in range(len(full)):
            subset = np.delete(full, i)
            assert p.is_feasible(subset)

    def test_informed_matches_corollary31(self, tight_problem):
        """informed() iff summed factors <= gamma_eps, per receiver."""
        mask = tight_problem.active_mask([0, 1, 2])
        inf = tight_problem.interference_on(mask)
        informed = tight_problem.informed(mask)
        for j in range(3):
            assert informed[j] == (inf[j] <= tight_problem.gamma_eps + 1e-12)

    def test_inactive_links_not_informed(self, tiny_problem):
        informed = tiny_problem.informed([0])
        np.testing.assert_array_equal(informed, [True, False, False])

    def test_interference_on_includes_inactive_receivers(self, tight_problem):
        inf = tight_problem.interference_on([0])
        # Receiver 1 is inactive but still sees sender 0's interference.
        assert inf[1] > 0
        f = tight_problem.interference_matrix()
        assert inf[1] == pytest.approx(f[0, 1])


class TestObjective:
    def test_scheduled_rate(self, tiny_links):
        p = FadingRLS(links=tiny_links.with_rates(np.array([1.0, 2.0, 4.0])))
        assert p.scheduled_rate([0, 2]) == 5.0

    def test_success_probabilities_align(self, tight_problem):
        probs = tight_problem.success_probabilities([0, 1])
        assert probs[2] == 0.0  # inactive
        assert 0 < probs[0] < 1 and 0 < probs[1] < 1

    def test_success_probability_matches_theorem31(self, tight_problem):
        from repro.channel.rayleigh import success_probability

        probs = tight_problem.success_probabilities([0, 1, 2])
        direct = success_probability(
            tight_problem.distances(), np.array([0, 1, 2]), 3.0, 1.0
        )
        np.testing.assert_allclose(probs, direct)

    def test_expected_throughput_bounded_by_scheduled(self, tight_problem):
        et = tight_problem.expected_throughput([0, 1, 2])
        assert 0 < et <= tight_problem.scheduled_rate([0, 1, 2])

    def test_feasible_schedule_high_success(self, tiny_problem):
        """A feasible schedule has success probability >= 1 - eps per link."""
        probs = tiny_problem.success_probabilities([0, 1, 2])
        assert (probs >= 1.0 - tiny_problem.eps - 1e-12).all()


class TestRestriction:
    def test_restrict(self, paper_problem):
        sub = paper_problem.restrict(np.arange(10))
        assert sub.n_links == 10
        assert sub.alpha == paper_problem.alpha

    def test_restrict_consistent_interference(self, paper_problem):
        idx = np.array([3, 7, 11])
        sub = paper_problem.restrict(idx)
        full_f = paper_problem.interference_matrix()
        np.testing.assert_allclose(
            sub.interference_matrix(), full_f[np.ix_(idx, idx)]
        )

    def test_with_params(self, tiny_problem):
        p2 = tiny_problem.with_params(alpha=4.0)
        assert p2.alpha == 4.0
        assert p2.eps == tiny_problem.eps
        assert p2.links is tiny_problem.links


class TestWithParamsCacheCarry:
    """with_params must reuse cached derived arrays when their defining
    parameters are untouched (eps-only sweeps reuse the O(N^2) F)."""

    def test_eps_only_change_carries_f(self, paper_problem):
        f = paper_problem.interference_matrix()
        p2 = paper_problem.with_params(eps=0.2)
        assert p2.interference_matrix() is f
        assert p2.distances() is paper_problem.distances()

    def test_noise_only_change_carries_f(self, paper_problem):
        f = paper_problem.interference_matrix()
        p2 = paper_problem.with_params(noise=1e-9)
        assert p2.interference_matrix() is f

    def test_alpha_change_recomputes_f(self, paper_problem):
        f = paper_problem.interference_matrix()
        p2 = paper_problem.with_params(alpha=4.0)
        f2 = p2.interference_matrix()
        assert f2 is not f
        assert not np.allclose(f2, f)

    def test_gamma_change_recomputes_f(self, paper_problem):
        f = paper_problem.interference_matrix()
        p2 = paper_problem.with_params(gamma_th=2.0)
        assert p2.interference_matrix() is not f

    def test_carried_f_matches_fresh_computation(self, paper_problem):
        paper_problem.interference_matrix()
        p2 = paper_problem.with_params(eps=0.3)
        from repro.core.problem import interference_factors

        fresh = interference_factors(
            p2.distances(), p2.alpha, p2.gamma_th, p2.powers
        )
        np.testing.assert_array_equal(p2.interference_matrix(), fresh)

    def test_uncached_source_stays_lazy(self, tiny_problem):
        # No caches built yet: with_params must not force computation.
        p2 = tiny_problem.with_params(eps=0.2)
        assert "F" not in p2._cache
        np.testing.assert_allclose(
            p2.interference_matrix(), tiny_problem.interference_matrix()
        )

    def test_power_change_recomputes_noise_factors(self, paper_problem):
        noisy = paper_problem.with_params(noise=1e-6)
        nf = noisy.noise_factors()
        p2 = noisy.with_params(power=2.0)
        assert p2.noise_factors() is not nf
        np.testing.assert_allclose(p2.noise_factors(), nf / 2.0)
