"""Memory-bounded Monte-Carlo replay tests.

Asserts the tentpole guarantees of the streaming simulator: chunked
replays are bit-identical to the legacy dense path for every budget,
and peak allocation during a replay stays under the configured
``max_bytes`` — the full ``(T, K, K)`` tensor is never materialised.
"""

import tracemalloc

import numpy as np

from repro.channel.sampling import instantaneous_sinr, sample_fading_trials
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule, simulate_trials


class TestChunkedEqualsUnchunked:
    def test_success_matrix_identical_across_budgets(self, paper_problem):
        s = rle_schedule(paper_problem)
        reference = simulate_trials(paper_problem, s, 300, seed=17)
        for max_bytes in (10_000, 100_000, 10**9):
            chunked = simulate_trials(paper_problem, s, 300, seed=17, max_bytes=max_bytes)
            np.testing.assert_array_equal(chunked, reference)

    def test_matches_legacy_dense_path(self, paper_problem):
        """The streamed replay equals one dense (T, K, K) draw + reduce —
        the seed repository's original computation."""
        idx = np.arange(paper_problem.n_links)
        z = sample_fading_trials(
            paper_problem.distances(),
            idx,
            paper_problem.alpha,
            150,
            power=paper_problem.tx_powers(),
            seed=55,
        )
        legacy = instantaneous_sinr(z, noise=paper_problem.noise) >= paper_problem.gamma_th
        streamed = simulate_trials(paper_problem, idx, 150, seed=55, max_bytes=200_000)
        np.testing.assert_array_equal(streamed, legacy)

    def test_summary_identical_across_budgets(self, paper_problem):
        s = rle_schedule(paper_problem)
        a = simulate_schedule(paper_problem, s, n_trials=200, seed=9)
        b = simulate_schedule(paper_problem, s, n_trials=200, seed=9, max_bytes=50_000)
        assert a.mean_failed == b.mean_failed
        assert a.mean_throughput == b.mean_throughput
        np.testing.assert_array_equal(a.per_link_success, b.per_link_success)

    def test_noise_passed_through_chunks(self):
        links = paper_topology(30, seed=2)
        p = FadingRLS(links=links)
        idx = np.arange(30)
        a = simulate_trials(p, idx, 100, noise=1e-6, seed=4)
        b = simulate_trials(p, idx, 100, noise=1e-6, seed=4, max_bytes=80_000)
        np.testing.assert_array_equal(a, b)


class TestMemoryBudget:
    def test_peak_allocation_under_budget(self):
        """K=200, T=5000: the dense tensor would be 1.6 GB; the streamed
        replay must stay under the 32 MiB budget."""
        k, t = 200, 5000
        max_bytes = 32 * 2**20
        p = FadingRLS(links=paper_topology(k, seed=1))
        schedule = np.arange(k)
        # Warm the problem's caches (distances, F) outside the window —
        # they are instance state, not replay working memory.
        p.distances(), p.tx_powers()
        tracemalloc.start()
        try:
            result = simulate_schedule(
                p, schedule, n_trials=t, seed=0, max_bytes=max_bytes
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.n_trials == t
        dense_bytes = 8 * t * k * k
        assert peak <= max_bytes, f"peak {peak} exceeds budget {max_bytes}"
        assert peak < dense_bytes / 10  # nowhere near the dense tensor

    def test_acceptance_scale_never_materialises_dense(self):
        """K=300, T=2000 (the acceptance-criteria point): dense would be
        1.44 GB; peak must stay within the configured budget."""
        k, t = 300, 2000
        max_bytes = 64 * 2**20
        p = FadingRLS(links=paper_topology(k, seed=6))
        p.distances(), p.tx_powers()
        tracemalloc.start()
        try:
            result = simulate_schedule(
                p, np.arange(k), n_trials=t, seed=3, max_bytes=max_bytes
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.n_trials == t
        assert peak <= max_bytes, f"peak {peak} exceeds budget {max_bytes}"
