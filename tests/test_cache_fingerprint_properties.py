"""Property-based tests (Hypothesis) for fingerprint canonicalization.

The invariance contract of
:func:`repro.cache.fingerprint.topology_fingerprint`, probed over
random instances and random transforms:

- **relabeling** — any permutation of the link labels maps to the same
  fingerprint, and the canonical orders align link for link;
- **rigid motion** — any translation + rotation (+ relabeling) maps to
  the same fingerprint;
- **uniform scaling** — noise-free instances are scale-invariant (the
  same gate the geometry-scale metamorphic relation uses); with
  ``noise > 0`` the scale re-enters the fingerprint;
- **distinctness** — perturbing one endpoint by a super-quantum amount
  changes the fingerprint, and the adversarial fuzzer families of
  :mod:`repro.verify` produce pairwise-distinct fingerprints (no
  spurious collisions on realistic geometries).
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.fingerprint import fingerprint_with_order, topology_fingerprint
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.verify.fuzz import FAMILIES, fuzz_scenarios

# -- strategies ------------------------------------------------------


@st.composite
def problems(draw, min_links=2, max_links=10, with_noise=False):
    """Small paper-style instances with optional noise."""
    n = draw(st.integers(min_links, max_links))
    seed = draw(st.integers(0, 2_000))
    noise = draw(st.floats(1e-4, 1e-2)) if with_noise else 0.0
    return FadingRLS(
        links=paper_topology(n, seed=seed),
        alpha=draw(st.sampled_from([2.6, 3.0, 4.0])),
        gamma_th=1.0,
        eps=0.05,
        noise=noise,
    )


def _rebuild(problem, senders, receivers, rates, **overrides):
    params = dict(
        alpha=problem.alpha,
        gamma_th=problem.gamma_th,
        eps=problem.eps,
        noise=problem.noise,
        power=problem.power,
    )
    params.update(overrides)
    return FadingRLS(
        links=LinkSet(senders=senders, receivers=receivers, rates=rates), **params
    )


def _transform(problem, *, theta=0.0, shift=(0.0, 0.0), scale=1.0, perm=None):
    rot = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
    senders = scale * np.asarray(problem.links.senders) @ rot.T + np.asarray(shift)
    receivers = scale * np.asarray(problem.links.receivers) @ rot.T + np.asarray(shift)
    rates = np.asarray(problem.links.rates)
    if perm is not None:
        senders, receivers, rates = senders[perm], receivers[perm], rates[perm]
    return _rebuild(problem, senders, receivers, rates)


# -- invariance ------------------------------------------------------


@given(
    problem=problems(),
    perm_seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_relabeling_is_invariant_and_orders_align(problem, perm_seed):
    perm = np.random.default_rng(perm_seed).permutation(problem.n_links)
    relabeled = _transform(problem, perm=perm)
    fp, order = fingerprint_with_order(problem)
    fp2, order2 = fingerprint_with_order(relabeled)
    assert fp == fp2
    assert np.array_equal(perm[order2], order)


@given(
    problem=problems(),
    theta=st.floats(0.0, 2 * np.pi),
    shift=st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
    perm_seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_rigid_motion_plus_relabeling_is_invariant(problem, theta, shift, perm_seed):
    perm = np.random.default_rng(perm_seed).permutation(problem.n_links)
    moved = _transform(problem, theta=theta, shift=shift, perm=perm)
    assert topology_fingerprint(problem) == topology_fingerprint(moved)


@given(problem=problems(), scale=st.floats(0.1, 50.0))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_uniform_scaling_is_invariant_without_noise(problem, scale):
    assert problem.noise == 0.0
    scaled = _transform(problem, scale=scale)
    assert topology_fingerprint(problem) == topology_fingerprint(scaled)


@given(problem=problems(with_noise=True), scale=st.sampled_from([0.5, 2.0, 10.0]))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_uniform_scaling_is_distinguished_with_noise(problem, scale):
    assert problem.noise > 0.0
    scaled = _transform(problem, scale=scale)
    assert topology_fingerprint(problem) != topology_fingerprint(scaled)


# -- distinctness ----------------------------------------------------


@given(
    problem=problems(),
    link=st.integers(0, 100),
    dx=st.floats(0.5, 5.0),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_endpoint_perturbation_changes_the_fingerprint(problem, link, dx):
    senders = np.asarray(problem.links.senders).copy()
    senders[link % problem.n_links] += (dx, 0.0)
    perturbed = _rebuild(
        problem, senders, np.asarray(problem.links.receivers), np.asarray(problem.links.rates)
    )
    assert topology_fingerprint(problem) != topology_fingerprint(perturbed)


@given(problem=problems(min_links=3))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_rate_change_changes_the_fingerprint(problem):
    rates = np.asarray(problem.links.rates).copy()
    rates[0] *= 2.0
    changed = _rebuild(
        problem,
        np.asarray(problem.links.senders),
        np.asarray(problem.links.receivers),
        rates,
    )
    assert topology_fingerprint(problem) != topology_fingerprint(changed)


def test_fuzzer_families_have_no_spurious_collisions():
    """Adversarial scenario corpus → pairwise-distinct fingerprints."""
    scenarios = fuzz_scenarios(25, seed=0, families=FAMILIES)
    fingerprints = {}
    for sc in scenarios:
        fp = topology_fingerprint(sc.problem)
        fingerprints.setdefault(fp, []).append(sc.name)
    collisions = {k: v for k, v in fingerprints.items() if len(v) > 1}
    assert not collisions, f"fingerprint collisions across scenarios: {collisions}"
    assert len(fingerprints) == 25


def test_fuzzer_family_pairs_distinct_across_sizes():
    """Same family at different sizes/parameters never collides."""
    scenarios = [s for s in fuzz_scenarios(10, seed=3, families=("near-duplicate",))]
    for a, b in itertools.combinations(scenarios, 2):
        assert topology_fingerprint(a.problem) != topology_fingerprint(b.problem)
