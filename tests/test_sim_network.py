"""Tests for the queue-driven frame simulator."""

import numpy as np
import pytest

from repro.core.baselines.naive import greedy_fading_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.topology import paper_topology
from repro.sim.network_sim import QueueSimResult, simulate_queues, stability_sweep


@pytest.fixture(scope="module")
def queue_problem():
    return FadingRLS(links=paper_topology(60, seed=0))


class TestSimulateQueues:
    def test_accounting_identities(self, queue_problem):
        r = simulate_queues(queue_problem, rle_schedule, n_slots=100, arrival_rate=0.05, seed=1)
        # Conservation: every arrival is delivered or still queued.
        assert r.arrivals == r.deliveries + r.final_backlog
        assert r.per_link_delivered.sum() == r.deliveries
        assert r.per_slot_backlog.shape == (100,)
        assert r.per_slot_backlog[-1] == r.final_backlog

    def test_reproducible(self, queue_problem):
        a = simulate_queues(queue_problem, rle_schedule, n_slots=50, seed=7)
        b = simulate_queues(queue_problem, rle_schedule, n_slots=50, seed=7)
        assert a.deliveries == b.deliveries
        np.testing.assert_array_equal(a.per_slot_backlog, b.per_slot_backlog)

    def test_zero_arrivals(self, queue_problem):
        r = simulate_queues(queue_problem, rle_schedule, n_slots=20, arrival_rate=0.0, seed=0)
        assert r.arrivals == r.deliveries == r.failures == 0
        assert r.mean_backlog == 0.0
        assert np.isnan(r.mean_delay)

    def test_light_load_stable(self, queue_problem):
        """Under light load the backlog stays near zero and delivery is
        essentially complete."""
        r = simulate_queues(
            queue_problem, rle_schedule, n_slots=300, arrival_rate=0.01, seed=2
        )
        assert r.delivery_ratio > 0.9
        assert r.final_backlog <= 10

    def test_overload_unstable(self, queue_problem):
        """Far above capacity, the backlog grows roughly linearly."""
        r = simulate_queues(
            queue_problem, rle_schedule, n_slots=200, arrival_rate=2.0, seed=3
        )
        half = r.per_slot_backlog[100]
        assert r.per_slot_backlog[-1] > 1.5 * half > 0

    def test_fading_resistant_high_slot_efficiency(self, queue_problem):
        """RLE wastes almost no slots on failed transmissions."""
        r = simulate_queues(queue_problem, rle_schedule, n_slots=200, arrival_rate=0.05, seed=4)
        assert r.slot_efficiency >= 0.97

    def test_susceptible_scheduler_wastes_slots(self, queue_problem):
        """A deterministic-SINR scheduler retries failed packets and
        burns slots that RLE does not."""
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        r = simulate_queues(
            queue_problem, approx_diversity_schedule, n_slots=200, arrival_rate=0.2, seed=5
        )
        assert r.failures > 0
        assert r.slot_efficiency < 1.0

    def test_per_link_arrival_rates(self, queue_problem):
        rates = np.zeros(60)
        rates[:5] = 0.2  # only five links generate traffic
        r = simulate_queues(queue_problem, greedy_fading_schedule, n_slots=150, arrival_rate=rates, seed=6)
        assert r.per_link_delivered[5:].sum() == 0
        assert r.per_link_delivered[:5].sum() == r.deliveries

    def test_delay_positive(self, queue_problem):
        r = simulate_queues(queue_problem, rle_schedule, n_slots=150, arrival_rate=0.05, seed=8)
        assert r.mean_delay >= 1.0  # delivery takes at least the slot of arrival

    def test_validation(self, queue_problem):
        with pytest.raises(ValueError):
            simulate_queues(queue_problem, rle_schedule, n_slots=0)
        with pytest.raises(ValueError):
            simulate_queues(queue_problem, rle_schedule, n_slots=10, warmup=10)
        with pytest.raises(ValueError):
            simulate_queues(queue_problem, rle_schedule, n_slots=10, arrival_rate=-0.1)

    def test_warmup_excluded_from_backlog(self, queue_problem):
        full = simulate_queues(queue_problem, rle_schedule, n_slots=100, arrival_rate=0.3, seed=9)
        warm = simulate_queues(
            queue_problem, rle_schedule, n_slots=100, arrival_rate=0.3, seed=9, warmup=50
        )
        # Same trajectory, different averaging window.
        np.testing.assert_array_equal(full.per_slot_backlog, warm.per_slot_backlog)
        assert warm.mean_backlog == pytest.approx(full.per_slot_backlog[50:].mean())


class TestWeightAwareScheduling:
    def test_maxweight_serves_hot_links_first(self, queue_problem):
        """Max-weight mode: under asymmetric load the heavily loaded
        links get proportionally more service than under plain greedy."""
        rates = np.full(60, 0.005)
        rates[:5] = 0.5  # five hot links
        plain = simulate_queues(
            queue_problem,
            greedy_fading_schedule,
            n_slots=250,
            arrival_rate=rates,
            seed=3,
            weight_aware=False,
        )
        maxweight = simulate_queues(
            queue_problem,
            greedy_fading_schedule,
            n_slots=250,
            arrival_rate=rates,
            seed=3,
            weight_aware=True,
        )
        hot_plain = plain.per_link_delivered[:5].sum()
        hot_mw = maxweight.per_link_delivered[:5].sum()
        assert hot_mw >= hot_plain

    def test_maxweight_backlog_not_worse(self, queue_problem):
        rates = np.full(60, 0.01)
        rates[:8] = 0.3
        plain = simulate_queues(
            queue_problem, greedy_fading_schedule, n_slots=250, arrival_rate=rates, seed=4
        )
        mw = simulate_queues(
            queue_problem,
            greedy_fading_schedule,
            n_slots=250,
            arrival_rate=rates,
            seed=4,
            weight_aware=True,
        )
        assert mw.mean_backlog <= plain.mean_backlog * 1.5

    def test_weight_aware_slots_still_feasible_via_efficiency(self, queue_problem):
        """Weighted sub-instances must still produce feasible slots:
        slot efficiency stays at the eps-floor."""
        r = simulate_queues(
            queue_problem,
            greedy_fading_schedule,
            n_slots=150,
            arrival_rate=0.1,
            seed=5,
            weight_aware=True,
        )
        assert r.slot_efficiency >= 0.97

    def test_rle_unaffected_by_weight_mode(self, queue_problem):
        """RLE ignores rates, so weight_aware must not change anything
        ... except RLE's strict_uniform guard: weighted rates are
        non-uniform, so RLE raises — document via wrapper."""

        def tolerant_rle(problem, **kw):
            return rle_schedule(problem, strict_uniform=False, **kw)

        a = simulate_queues(
            queue_problem, tolerant_rle, n_slots=100, arrival_rate=0.05, seed=6, weight_aware=True
        )
        b = simulate_queues(
            queue_problem, tolerant_rle, n_slots=100, arrival_rate=0.05, seed=6, weight_aware=False
        )
        assert a.deliveries == b.deliveries


class TestStabilitySweep:
    def test_backlog_grows_with_load(self, queue_problem):
        results = stability_sweep(
            queue_problem, rle_schedule, [0.01, 1.0], n_slots=150, seed=1
        )
        assert len(results) == 2
        assert results[1].final_backlog > results[0].final_backlog

    def test_each_point_is_queue_result(self, queue_problem):
        results = stability_sweep(queue_problem, rle_schedule, [0.02], n_slots=50)
        assert isinstance(results[0], QueueSimResult)
