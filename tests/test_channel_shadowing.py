"""Tests for the composite shadowing + Rayleigh channel."""

import numpy as np
import pytest

from repro.channel.shadowing import sample_shadowed_trials, success_probability_shadowed


def ring_distances(n=4, own=10.0, cross=60.0):
    d = np.full((n, n), cross)
    np.fill_diagonal(d, own)
    return d


class TestSampler:
    def test_shape(self):
        z = sample_shadowed_trials(ring_distances(), np.arange(3), 3.0, 8.0, 5, seed=0)
        assert z.shape == (5, 3, 3)

    def test_zero_sigma_is_rayleigh(self):
        """sigma_db = 0: distribution identical to the plain sampler's law."""
        d = ring_distances()
        z = sample_shadowed_trials(d, np.arange(4), 3.0, 0.0, 100_000, seed=1)
        means = z.mean(axis=0)
        np.testing.assert_allclose(means, d ** -3.0, rtol=0.05)

    def test_normalized_mean_preserved(self):
        """With normalisation the composite keeps E[Z] = P d^-alpha."""
        d = ring_distances()
        z = sample_shadowed_trials(
            d, np.arange(4), 3.0, 6.0, 200_000, shadowing_static=False, seed=2
        )
        np.testing.assert_allclose(z.mean(axis=0), d ** -3.0, rtol=0.1)

    def test_shadowing_increases_variance(self):
        d = ring_distances()
        plain = sample_shadowed_trials(d, np.arange(4), 3.0, 0.0, 50_000, seed=3)
        shadowed = sample_shadowed_trials(
            d, np.arange(4), 3.0, 8.0, 50_000, shadowing_static=False, seed=3
        )
        assert shadowed.var(axis=0).mean() > plain.var(axis=0).mean()

    def test_static_shadowing_shared_across_trials(self):
        """Static mode: the per-pair shadowing gain is one draw, so the
        trial-mean matrix deviates from the pathloss mean."""
        d = ring_distances()
        z = sample_shadowed_trials(
            d, np.arange(4), 3.0, 10.0, 20_000, shadowing_static=True, seed=4
        )
        ratio = z.mean(axis=0) / d ** -3.0
        # Some pair must sit well away from 1 (its frozen shadow).
        assert np.abs(np.log(ratio)).max() > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_shadowed_trials(ring_distances(), np.arange(2), 3.0, -1.0, 5)
        with pytest.raises(ValueError):
            sample_shadowed_trials(ring_distances(), np.arange(2), 3.0, 3.0, -1)


class TestSuccessProbability:
    def test_zero_sigma_matches_theorem31(self):
        from repro.channel.rayleigh import success_probability

        d = ring_distances()
        active = np.arange(4)
        exact = success_probability(d, active, 3.0, 1.0)
        mc = success_probability_shadowed(
            d, active, 3.0, 1.0, sigma_db=0.0, n_trials=100_000, seed=5
        )
        np.testing.assert_allclose(mc, exact, atol=0.01)

    def test_graceful_degradation(self):
        """Moderate shadowing barely moves a comfortably feasible
        schedule's success probability (it scales signal and
        interference symmetrically)."""
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule
        from repro.network.topology import paper_topology

        p = FadingRLS(links=paper_topology(100, seed=0))
        s = rle_schedule(p)
        idx = s.active
        base = success_probability_shadowed(
            p.distances(), idx, 3.0, 1.0, sigma_db=0.0, n_trials=30_000, seed=6
        )
        shadowed = success_probability_shadowed(
            p.distances(), idx, 3.0, 1.0, sigma_db=6.0, n_trials=30_000, seed=7
        )
        assert shadowed.mean() > base.mean() - 0.03

    def test_empty(self):
        p = success_probability_shadowed(
            ring_distances(), np.zeros(0, dtype=int), 3.0, 1.0, 4.0, n_trials=10
        )
        assert p.size == 0
