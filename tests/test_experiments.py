"""Tests for the experiment drivers (small configurations)."""

import pytest

from repro.experiments.ablations import (
    approximation_quality,
    ldp_class_ablation,
    rle_c2_ablation,
)
from repro.experiments.config import ExperimentConfig, paper_scheduler_set
from repro.experiments.fig5 import failed_vs_alpha, failed_vs_links
from repro.experiments.fig6 import throughput_vs_alpha, throughput_vs_links
from repro.experiments.reporting import format_series, format_table


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig().small()


class TestConfig:
    def test_paper_defaults(self):
        c = ExperimentConfig()
        assert c.region_side == 500.0
        assert (c.min_length, c.max_length) == (5.0, 20.0)
        assert c.eps == 0.01 and c.gamma_th == 1.0 and c.rate == 1.0

    def test_scheduler_set(self):
        s = paper_scheduler_set()
        assert set(s) == {"ldp", "rle", "approx_logn", "approx_diversity"}

    def test_workload_factory(self):
        c = ExperimentConfig()
        links = c.workload(30)(seed=0)
        assert len(links) == 30

    def test_small_is_smaller(self):
        c = ExperimentConfig()
        s = c.small()
        assert s.n_repetitions < c.n_repetitions
        assert max(s.n_links_sweep) < max(c.n_links_sweep)


class TestFig5:
    def test_failed_vs_links_structure(self, cfg):
        sweep = failed_vs_links(cfg)
        assert sweep.x_values == tuple(float(n) for n in cfg.n_links_sweep)
        assert set(sweep.series) == {"ldp", "rle", "approx_logn", "approx_diversity"}

    def test_fading_resistant_algorithms_rarely_fail(self, cfg):
        sweep = failed_vs_links(cfg)
        for alg in ("ldp", "rle"):
            for v in sweep.metric(alg, "mean_failed"):
                # Feasible schedules fail w.p. <= eps per link.
                assert v <= 1.0

    def test_baselines_fail_more_than_ours(self, cfg):
        sweep = failed_vs_links(cfg)
        ours = max(
            max(sweep.metric("ldp", "mean_failed")),
            max(sweep.metric("rle", "mean_failed")),
        )
        theirs = max(
            max(sweep.metric("approx_logn", "mean_failed")),
            max(sweep.metric("approx_diversity", "mean_failed")),
        )
        assert theirs > ours

    def test_failed_vs_alpha_structure(self, cfg):
        sweep = failed_vs_alpha(cfg)
        assert sweep.x_values == tuple(cfg.alpha_sweep)
        assert sweep.x_label.startswith("path loss")


class TestFig6:
    def test_throughput_vs_links_structure(self, cfg):
        sweep = throughput_vs_links(cfg)
        assert set(sweep.series) == {"ldp", "rle"}

    def test_rle_beats_ldp(self, cfg):
        """The paper's headline Fig. 6 ordering."""
        sweep = throughput_vs_links(cfg)
        rle = sweep.metric("rle", "mean_throughput")
        ldp = sweep.metric("ldp", "mean_throughput")
        assert all(r >= l for r, l in zip(rle, ldp))

    def test_throughput_grows_with_links(self, cfg):
        sweep = throughput_vs_links(cfg)
        rle = sweep.metric("rle", "mean_throughput")
        assert rle[-1] >= rle[0]

    def test_throughput_grows_with_alpha(self, cfg):
        sweep = throughput_vs_alpha(cfg)
        for alg in ("ldp", "rle"):
            t = sweep.metric(alg, "mean_throughput")
            assert t[-1] > t[0]


class TestAblations:
    def test_ldp_class_ablation(self):
        out = ldp_class_ablation(n_links=60, n_repetitions=3)
        assert set(out) == {"one_sided", "two_sided"}
        # The paper's improvement: one-sided classes never lose.
        assert out["one_sided"].means[0] >= out["two_sided"].means[0] - 1e-9

    def test_rle_c2_ablation(self):
        out = rle_c2_ablation(c2_values=(0.25, 0.75), n_links=60, n_repetitions=3)
        assert len(out.means) == 2
        assert all(m > 0 for m in out.means)

    def test_approximation_quality(self):
        q = approximation_quality(n_links=8, n_instances=4)
        for alg in ("ldp", "rle"):
            assert q.mean_ratio[alg] >= 1.0 - 1e-9
            assert q.worst_ratio[alg] >= q.mean_ratio[alg] - 1e-9


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_format_series(self, cfg):
        sweep = throughput_vs_links(cfg)
        out = format_series(sweep, "mean_throughput", title="Fig 6a")
        assert out.startswith("Fig 6a")
        assert "ldp" in out and "rle" in out
        # One row per x value.
        assert len(out.splitlines()) == 3 + len(cfg.n_links_sweep)
