"""Tests for repro.utils.zeta."""

import numpy as np
import pytest

from repro.utils.zeta import riemann_zeta, zeta_partial_sum, zeta_tail_bound


class TestRiemannZeta:
    def test_known_value_basel(self):
        # zeta(2) = pi^2 / 6
        assert riemann_zeta(2.0) == pytest.approx(np.pi**2 / 6, rel=1e-12)

    def test_known_value_zeta4(self):
        assert riemann_zeta(4.0) == pytest.approx(np.pi**4 / 90, rel=1e-12)

    def test_monotone_decreasing(self):
        assert riemann_zeta(1.5) > riemann_zeta(2.0) > riemann_zeta(3.0) > 1.0

    @pytest.mark.parametrize("s", [1.0, 0.5, 0.0, -1.0])
    def test_divergent_domain_rejected(self, s):
        with pytest.raises(ValueError):
            riemann_zeta(s)

    def test_approaches_one(self):
        assert riemann_zeta(30.0) == pytest.approx(1.0, abs=1e-8)


class TestPartialSum:
    def test_zero_terms(self):
        assert zeta_partial_sum(2.0, 0) == 0.0

    def test_one_term(self):
        assert zeta_partial_sum(2.0, 1) == 1.0

    def test_converges_to_zeta(self):
        assert zeta_partial_sum(3.0, 10_000) == pytest.approx(riemann_zeta(3.0), rel=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            zeta_partial_sum(2.0, -1)


class TestTailBound:
    def test_bounds_actual_tail(self):
        s = 2.5
        for start in (1, 2, 5, 10):
            actual_tail = riemann_zeta(s) - zeta_partial_sum(s, start - 1)
            assert zeta_tail_bound(s, start) >= actual_tail

    def test_tail_shrinks(self):
        assert zeta_tail_bound(2.0, 10) < zeta_tail_bound(2.0, 2)

    def test_domain(self):
        with pytest.raises(ValueError):
            zeta_tail_bound(1.0, 1)
        with pytest.raises(ValueError):
            zeta_tail_bound(2.0, 0)
