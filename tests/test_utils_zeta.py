"""Tests for repro.utils.zeta."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.zeta import riemann_zeta, zeta_partial_sum, zeta_tail_bound


class TestRiemannZeta:
    def test_known_value_basel(self):
        # zeta(2) = pi^2 / 6
        assert riemann_zeta(2.0) == pytest.approx(np.pi**2 / 6, rel=1e-12)

    def test_known_value_zeta4(self):
        assert riemann_zeta(4.0) == pytest.approx(np.pi**4 / 90, rel=1e-12)

    def test_monotone_decreasing(self):
        assert riemann_zeta(1.5) > riemann_zeta(2.0) > riemann_zeta(3.0) > 1.0

    @pytest.mark.parametrize("s", [1.0, 0.5, 0.0, -1.0])
    def test_divergent_domain_rejected(self, s):
        with pytest.raises(ValueError):
            riemann_zeta(s)

    def test_approaches_one(self):
        assert riemann_zeta(30.0) == pytest.approx(1.0, abs=1e-8)


class TestPartialSum:
    def test_zero_terms(self):
        assert zeta_partial_sum(2.0, 0) == 0.0

    def test_one_term(self):
        assert zeta_partial_sum(2.0, 1) == 1.0

    def test_converges_to_zeta(self):
        assert zeta_partial_sum(3.0, 10_000) == pytest.approx(riemann_zeta(3.0), rel=1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            zeta_partial_sum(2.0, -1)


class TestPartialSumProperties:
    """Hypothesis: the proofs' ring sums rely on these order facts."""

    _s = st.floats(min_value=1.05, max_value=12.0, allow_nan=False)

    @given(_s, st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_terms(self, s, n1, n2):
        # Monotone up to summation-order rounding (numpy sums pairwise,
        # so two prefixes can disagree in their last ulp).
        lo, hi = sorted((n1, n2))
        hi_sum = zeta_partial_sum(s, hi)
        assert zeta_partial_sum(s, lo) <= hi_sum + 4 * np.finfo(float).eps * hi_sum

    @given(_s, st.integers(1, 500))
    @settings(max_examples=80, deadline=None)
    def test_each_term_adds_its_value(self, s, n):
        # Each step adds exactly n^-s (up to float rounding; for large s
        # the term can fall below one ulp of the running sum).
        lo, hi = zeta_partial_sum(s, n - 1), zeta_partial_sum(s, n)
        assert hi >= lo - 4 * np.finfo(float).eps * hi
        assert hi - lo == pytest.approx(n**-s, abs=4 * np.finfo(float).eps * hi)

    @given(_s, st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_zeta(self, s, n):
        assert zeta_partial_sum(s, n) <= riemann_zeta(s) * (1 + 1e-12)

    @given(_s, st.integers(1, 200))
    @settings(max_examples=80, deadline=None)
    def test_tail_bound_dominates_true_tail(self, s, start):
        # The subtraction cancels catastrophically for tiny tails, so
        # allow a few ulps of zeta(s) as absolute slack.
        true_tail = riemann_zeta(s) - zeta_partial_sum(s, start - 1)
        slack = 8 * np.finfo(float).eps * riemann_zeta(s)
        assert zeta_tail_bound(s, start) >= true_tail - slack


class TestTailBound:
    def test_bounds_actual_tail(self):
        s = 2.5
        for start in (1, 2, 5, 10):
            actual_tail = riemann_zeta(s) - zeta_partial_sum(s, start - 1)
            assert zeta_tail_bound(s, start) >= actual_tail

    def test_tail_shrinks(self):
        assert zeta_tail_bound(2.0, 10) < zeta_tail_bound(2.0, 2)

    def test_domain(self):
        with pytest.raises(ValueError):
            zeta_tail_bound(1.0, 1)
        with pytest.raises(ValueError):
            zeta_tail_bound(2.0, 0)
