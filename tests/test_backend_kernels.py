"""Kernel-level tests for the compute backends (``repro.backend``).

Every available backend must reproduce the numpy reference *exactly*:
bit-identical F matrices and Monte-Carlo success bits, and identical
feasibility verdicts (verdict equality — not float-sum equality — is
the feasibility contract; see ``repro.backend.kernels``).  The
parametrized fixture runs each test against every backend that resolves
without fallback on this machine, so the numba leg activates
automatically in CI images that ship numba.
"""

import numpy as np
import pytest

from repro.backend import base as backend_base
from repro.backend import kernels
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_trials


def _available_backends():
    names = []
    for name in backend_base.BACKEND_NAMES:
        _, fallback = backend_base.resolve(name)
        if fallback is None:
            names.append(name)
    return names


AVAILABLE = _available_backends()


@pytest.fixture(params=AVAILABLE)
def backend_name(request):
    """Each available backend in turn; tests run under ``use(name)``."""
    with backend_base.use(request.param):
        yield request.param


def _problem(n=24, *, seed=3, noise=0.0, powers=None, alpha=3.0):
    links = paper_topology(n, seed=seed)
    return FadingRLS(links=links, alpha=alpha, noise=noise, powers=powers)


class TestFmatrixKernel:
    def test_matches_reference_bits(self, backend_name):
        p = _problem(30)
        ref = kernels.fmatrix(p.distances(), p.alpha, p.gamma_th)
        np.testing.assert_array_equal(p.interference_matrix(), ref)

    def test_non_uniform_powers(self, backend_name):
        rng = np.random.default_rng(5)
        powers = rng.uniform(0.5, 2.0, size=20)
        p = _problem(20, powers=powers)
        ref = kernels.fmatrix(p.distances(), p.alpha, p.gamma_th, powers=powers)
        np.testing.assert_array_equal(p.interference_matrix(), ref)

    def test_zero_diagonal(self, backend_name):
        p = _problem(12)
        assert np.all(np.diagonal(p.interference_matrix()) == 0.0)

    def test_singleton(self, backend_name):
        links = LinkSet(
            senders=np.array([[0.0, 0.0]]),
            receivers=np.array([[10.0, 0.0]]),
            rates=np.ones(1),
        )
        p = FadingRLS(links=links, alpha=3.0)
        f = p.interference_matrix()
        assert f.shape == (1, 1) and f[0, 0] == 0.0


class TestFeasibilityKernel:
    def test_empty_set_feasible(self, backend_name):
        p = _problem(10)
        assert p.is_feasible(np.array([], dtype=np.int64))

    def test_singleton_feasible(self, backend_name):
        p = _problem(10)
        assert p.is_feasible(np.array([0]))

    def test_unserviceable_singleton_infeasible(self, backend_name):
        # Noise so high the longest link cannot decode even alone:
        # effective budget < 0, so even the empty interference load
        # exceeds it (serviceable-mask edge).
        p = _problem(10, noise=1e9)
        assert not p.serviceable().any()
        assert not p.is_feasible(np.array([0]))
        # The truly empty set stays feasible by convention.
        assert p.is_feasible(np.array([], dtype=np.int64))

    def test_matches_reference_verdicts(self, backend_name):
        p = _problem(30)
        rng = np.random.default_rng(9)
        with backend_base.use("numpy"):
            ref = _problem(30)
            for _ in range(10):
                k = int(rng.integers(0, 12))
                active = rng.choice(30, size=k, replace=False)
                assert p.is_feasible(active) == ref.is_feasible(active)

    def test_overloaded_set_infeasible_everywhere(self, backend_name):
        p = _problem(40, seed=1)
        full = np.arange(40)
        with backend_base.use("numpy"):
            ref_verdict = _problem(40, seed=1).is_feasible(full)
        assert p.is_feasible(full) == ref_verdict


class TestMCKernel:
    def test_success_bits_match_reference(self, backend_name):
        p = _problem(16)
        active = np.arange(8)
        got = simulate_trials(p, active, 64, seed=123)
        with backend_base.use("numpy"):
            ref = simulate_trials(_problem(16), active, 64, seed=123)
        np.testing.assert_array_equal(got, ref)

    def test_empty_schedule(self, backend_name):
        p = _problem(8)
        out = simulate_trials(p, np.array([], dtype=np.int64), 16, seed=0)
        assert out.shape == (16, 0)

    def test_scratch_regrows(self):
        scratch = kernels.MCScratch()
        a = scratch.buffers(4, 3)
        b = scratch.buffers(8, 5)  # larger shape forces a re-grow
        c = scratch.buffers(2, 2)  # smaller shape reuses the backing
        assert a[0].shape == (4, 3)
        assert b[0].shape == (8, 5)
        assert c[0].shape == (2, 2)

    def test_chunk_kernel_matches_naive(self):
        rng = np.random.default_rng(11)
        z = rng.exponential(size=(10, 6, 6))
        gamma_th, noise = 1.0, 0.25
        out = np.empty((10, 6), dtype=bool)
        kernels.mc_success_chunk(z, gamma_th, noise, out=out)
        signal = np.diagonal(z, axis1=1, axis2=2)
        denom = z.sum(axis=1) - signal + noise
        with np.errstate(divide="ignore"):
            sinr = np.where(denom > 0, signal / denom, np.inf)
        np.testing.assert_array_equal(out, sinr >= gamma_th)


class TestGatheredInterference:
    def test_matches_ix_sum(self):
        rng = np.random.default_rng(2)
        f = rng.uniform(size=(15, 15))
        rows = np.array([1, 4, 7])
        cols = np.array([0, 2, 9, 11])
        np.testing.assert_array_equal(
            kernels.gathered_interference(f, rows, cols),
            f[np.ix_(rows, cols)].sum(axis=0),
        )

    def test_empty_active(self):
        f = np.ones((5, 5))
        out = kernels.active_interference(f, np.array([], dtype=np.int64))
        assert out.shape == (0,)


class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in AVAILABLE

    def test_sharedmem_available(self):
        assert "sharedmem" in AVAILABLE

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            backend_base.resolve("fortran")

    def test_auto_resolves_to_numpy(self):
        backend, fallback = backend_base.resolve("auto")
        assert backend.name == "numpy" and fallback is None

    def test_unavailable_backend_falls_back(self, monkeypatch):
        def _boom():
            raise ModuleNotFoundError("nope")

        monkeypatch.setitem(backend_base._FACTORIES, "numba", _boom)
        backend_base._instances.pop("numba", None)
        try:
            backend, fallback = backend_base.resolve("numba")
            assert backend.name == "numpy"
            assert fallback is not None
        finally:
            backend_base._instances.pop("numba", None)

    def test_use_restores_previous(self):
        before = backend_base.get_active().name
        with backend_base.use("sharedmem"):
            assert backend_base.get_active().name == "sharedmem"
        assert backend_base.get_active().name == before
