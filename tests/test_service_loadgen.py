"""Load-generator tests: deterministic traces, closed accounting.

Small client counts keep tier-1 fast; the 1000-client proof lives in
``benchmarks/test_service_smoke.py`` and the CI ``service`` leg.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service.broker import ScheduleBroker
from repro.service.loadgen import (
    LoadReport,
    build_topology_payload,
    request_trace,
    run_loadgen,
    topology_pool,
)
from repro.service.server import ScheduleServer


class TestRequestTrace:
    def test_trace_is_seed_deterministic(self):
        a = request_trace(20, 3, "spikes", seed=5)
        b = request_trace(20, 3, "spikes", seed=5)
        c = request_trace(20, 3, "spikes", seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_first_tick_guarantees_full_concurrency(self):
        for family in ("poisson", "onoff", "diurnal", "spikes"):
            counts = request_trace(15, 2, family, seed=0)
            assert counts.shape == (2, 15)
            assert (counts[0] >= 1).all()

    def test_pool_is_deterministic_and_distinct(self):
        pool_a = topology_pool(3, 8, seed=4)
        pool_b = topology_pool(3, 8, seed=4)
        for pa, pb in zip(pool_a, pool_b):
            assert np.array_equal(pa.links.senders, pb.links.senders)
        fingerprints = {tuple(p.links.senders.ravel()) for p in pool_a}
        assert len(fingerprints) == 3


class TestDirectMode:
    def _run(self, **kwargs):
        async def drive():
            broker = ScheduleBroker(inline=True, **kwargs.pop("broker_kwargs", {}))
            await broker.start()
            try:
                return await run_loadgen(broker=broker, **kwargs)
            finally:
                await broker.close()

        return asyncio.run(drive())

    def test_all_requests_accounted(self):
        report = self._run(clients=25, ticks=2, seed=1, n_links=8)
        assert report.sent == request_trace(25, 2, "spikes", 1).sum()
        assert report.ok == report.sent
        assert report.unaccounted == 0
        assert report.peak_inflight >= 25
        assert len(report.latencies) == report.ok

    def test_backpressure_is_counted_not_lost(self):
        report = self._run(
            clients=30,
            ticks=1,
            seed=2,
            n_links=6,
            pool=30,  # all-distinct topologies: no coalescing relief
            broker_kwargs={"queue_limit": 4},
        )
        assert report.rejected_503 > 0
        assert report.ok + report.rejected_503 == report.sent
        assert report.unaccounted == 0

    def test_tenant_rate_limits_surface_as_429(self):
        report = self._run(
            clients=10,
            ticks=1,
            seed=3,
            n_links=6,
            tenants=2,
            broker_kwargs={"tenant_rate": 0.001, "tenant_burst": 2.0},
        )
        # two tenants x burst 2 = 4 admitted, the rest rate-limited
        assert report.ok == 4
        assert report.rejected_429 == report.sent - 4
        assert report.unaccounted == 0

    def test_outcome_counts_are_deterministic(self):
        kwargs = dict(clients=12, ticks=2, seed=9, n_links=6)
        a = self._run(**kwargs)
        b = self._run(**kwargs)
        assert (a.sent, a.ok, a.rejected_429, a.rejected_503) == (
            b.sent,
            b.ok,
            b.rejected_429,
            b.rejected_503,
        )


class TestHttpMode:
    def test_against_live_server(self):
        async def drive():
            broker = ScheduleBroker(inline=True)
            server = ScheduleServer(broker, port=0)
            await broker.start()
            host, port = await server.start()
            try:
                return await run_loadgen(
                    host=host, port=port, clients=20, ticks=2, seed=7, n_links=8
                )
            finally:
                await server.close()
                await broker.close(drain=False)

        report = asyncio.run(drive())
        assert report.ok == report.sent
        assert report.transport_errors == 0
        assert report.unaccounted == 0
        assert report.peak_inflight >= 20
        assert report.percentile_ms(0.99) >= report.percentile_ms(0.50) >= 0

    def test_connect_failure_counts_as_transport_errors(self):
        async def drive():
            # nothing listens on this port: every request becomes a
            # transport error, none unaccounted
            return await run_loadgen(
                host="127.0.0.1", port=9, clients=5, ticks=1, seed=0, timeout=2.0
            )

        report = asyncio.run(drive())
        assert report.ok == 0
        assert report.transport_errors == report.sent
        assert report.unaccounted == 0

    def test_mode_arguments_are_exclusive(self):
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen(clients=1))
        with pytest.raises(ValueError):
            asyncio.run(
                run_loadgen(
                    host="h", port=1, broker=ScheduleBroker(inline=True), clients=1
                )
            )


class TestReport:
    def test_percentiles_and_dict(self):
        report = LoadReport(clients=2, ticks=1, arrival="poisson", seed=0)
        report.sent = 4
        report.ok = 3
        report.rejected_429 = 1
        report.latencies = [0.001, 0.002, 0.003]
        report.wall_seconds = 1.5
        assert report.unaccounted == 0
        assert report.percentile_ms(0.0) == pytest.approx(1.0)
        assert report.percentile_ms(1.0) == pytest.approx(3.0)
        d = report.to_dict()
        assert d["throughput_rps"] == pytest.approx(2.0)
        assert d["unaccounted"] == 0
        assert set(d) >= {"p50_ms", "p90_ms", "p99_ms", "peak_inflight"}

    def test_empty_report_percentiles(self):
        report = LoadReport(clients=0, ticks=0, arrival="spikes", seed=0)
        assert report.percentile_ms(0.99) == 0.0
        assert report.throughput_rps == 0.0
