"""Golden hit/miss trace for the schedule cache.

``tests/goldens/cache_events.json`` pins — byte for byte — the event
sequence (exact/canonical/miss/evict, by fingerprint prefix), the
cache counters and the workload summary of a repeating-topology
traffic run served through a small cache.  The trace must not depend
on the compute backend or the process fan-out, so the same bytes are
asserted under every available backend and for ``n_jobs`` in
{1, 2, 4}.

Regenerate (only on a deliberate contract change) with::

    PYTHONPATH=src python tools/regen_cache_goldens.py
"""

import json
import sys
from pathlib import Path

import pytest

from repro.backend import available_backends, use

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from regen_cache_goldens import GOLDEN_PATH, build_payload  # noqa: E402

EVENT_KINDS = {"exact", "canonical", "warm", "miss", "evict"}


def _golden_bytes() -> bytes:
    return GOLDEN_PATH.read_bytes()


def _payload_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


class TestGoldenTrace:
    def test_golden_trace_matches(self):
        assert _payload_bytes(build_payload(n_jobs=1)) == _golden_bytes()

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_trace_is_invariant_across_n_jobs(self, n_jobs):
        assert _payload_bytes(build_payload(n_jobs=n_jobs)) == _golden_bytes()

    @pytest.mark.parametrize("backend", available_backends())
    def test_trace_is_invariant_across_backends(self, backend):
        with use(backend):
            payload = build_payload(n_jobs=1)
        assert _payload_bytes(payload) == _golden_bytes()


class TestGoldenShape:
    """Structural sanity of the pinned file itself."""

    def test_event_kinds_and_mixture(self):
        golden = json.loads(_golden_bytes())
        kinds = [kind for kind, _ in golden["events"]]
        assert set(kinds) <= EVENT_KINDS
        # The scenario was tuned so the trace exercises repetition
        # (exact), congruence (canonical) and pressure (evict) at once.
        for required in ("exact", "canonical", "miss", "evict"):
            assert required in kinds, f"golden trace lost its {required} events"

    def test_counters_agree_with_the_event_log(self):
        golden = json.loads(_golden_bytes())
        kinds = [kind for kind, _ in golden["events"]]
        cache = golden["cache"]
        assert cache["exact_hits"] == kinds.count("exact")
        assert cache["canonical_hits"] == kinds.count("canonical")
        assert cache["warm_hits"] == kinds.count("warm")
        assert cache["misses"] == kinds.count("miss")
        assert cache["evictions"] == kinds.count("evict")
        assert cache["entries"] <= cache["capacity"]

    def test_fingerprint_prefixes_are_hex(self):
        golden = json.loads(_golden_bytes())
        for _, prefix in golden["events"]:
            assert len(prefix) == 12
            int(prefix, 16)
