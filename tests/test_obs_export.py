"""JSONL trace export: round-trip, schema validation, summarisation."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    SCHEMA,
    TraceFormatError,
    format_trace_summary,
    read_trace,
    summarize_trace,
    validate_record,
    write_trace,
)
from repro.obs.trace import span


def _sample_spans(obs_enabled):
    with span("runner.run_sweep", points=2):
        with span("mc.replay", trials=10):
            pass
        with span("mc.replay", trials=10):
            pass
    return obs.drain_spans()


class TestRoundTrip:
    def test_spans_and_metrics_round_trip(self, obs_enabled, tmp_path):
        spans = _sample_spans(obs_enabled)
        obs_metrics.inc("mc.trials_simulated", 20)
        snap = obs_metrics.snapshot()
        path = tmp_path / "trace.jsonl"
        write_trace(path, spans, metrics_snapshot=snap, command="test")

        trace = read_trace(path)
        assert trace.meta["schema"] == SCHEMA
        assert trace.meta["command"] == "test"
        assert trace.metrics == snap
        assert [s["name"] for s in trace.spans] == [s.name for s in spans]
        assert trace.spans[0]["attrs"] == {"trials": 10}
        # every line of the file is valid standalone JSON
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + len(spans) + 1
        for line in lines:
            json.loads(line)

    def test_trace_without_metrics(self, obs_enabled, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, _sample_spans(obs_enabled))
        assert read_trace(path).metrics is None


class TestValidation:
    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta", "schema": "repro.trace.v99", "version": 99}\n')
        with pytest.raises(TraceFormatError, match="unsupported trace schema"):
            read_trace(path)

    def test_rejects_span_before_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"type": "span", "id": 0, "parent": null, "name": "a.b", '
            '"t0": 0.0, "wall": 0.1, "cpu": 0.1, "depth": 0}\n'
        )
        with pytest.raises(TraceFormatError, match="span before meta"):
            read_trace(path)

    def test_rejects_missing_span_field(self):
        rec = {"type": "span", "id": 0, "name": "a.b", "t0": 0.0, "wall": 0.1, "cpu": 0.1}
        with pytest.raises(TraceFormatError, match="missing 'depth'"):
            validate_record(rec)

    def test_rejects_invalid_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            f'{{"type": "meta", "schema": "{SCHEMA}", "version": 1}}\n'
            "not json\n"
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(path)

    def test_rejects_no_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="no meta record"):
            read_trace(path)

    def test_unknown_extra_fields_allowed(self):
        rec = {
            "type": "span", "id": 0, "parent": None, "name": "a.b",
            "t0": 0.0, "wall": 0.1, "cpu": 0.1, "depth": 0,
            "future_field": "ignored",
        }
        assert validate_record(rec) is rec


class TestSummarize:
    def test_self_time_subtracts_direct_children(self, obs_enabled, tmp_path):
        spans = _sample_spans(obs_enabled)
        path = tmp_path / "t.jsonl"
        write_trace(path, spans)
        rows = summarize_trace(read_trace(path))
        by_name = {r.name: r for r in rows}
        sweep, replay = by_name["runner.run_sweep"], by_name["mc.replay"]
        assert sweep.calls == 1 and replay.calls == 2
        # parent self time excludes the two replay children
        assert sweep.self_wall == pytest.approx(
            sweep.total_wall - replay.total_wall, abs=1e-9
        )
        # sorted by total wall descending: the enclosing span leads
        assert rows[0].name == "runner.run_sweep"

    def test_format_names_top_spans(self, obs_enabled, tmp_path):
        spans = _sample_spans(obs_enabled)
        path = tmp_path / "t.jsonl"
        write_trace(path, spans, metrics_snapshot=obs_metrics.snapshot())
        text = format_trace_summary(read_trace(path), top=10, path=str(path))
        assert "runner.run_sweep" in text and "mc.replay" in text
        assert SCHEMA in text and "metrics attached" in text

    def test_top_limits_rows(self, obs_enabled, tmp_path):
        spans = _sample_spans(obs_enabled)
        path = tmp_path / "t.jsonl"
        write_trace(path, spans)
        text = format_trace_summary(read_trace(path), top=1)
        assert "runner.run_sweep" in text and "mc.replay" not in text
