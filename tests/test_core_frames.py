"""Tests for demand-aware TDMA frame construction."""

import numpy as np
import pytest

from repro.core.frames import Frame, build_demand_frame, frame_length_lower_bound
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


@pytest.fixture(scope="module")
def frame_problem():
    return FadingRLS(links=paper_topology(60, seed=0))


class TestBuildDemandFrame:
    def test_demands_met_exactly(self, frame_problem):
        rng = np.random.default_rng(0)
        demands = rng.integers(0, 4, frame_problem.n_links)
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        assert frame.verify(frame_problem)
        np.testing.assert_array_equal(
            frame.service_counts(frame_problem.n_links), demands
        )

    def test_every_slot_feasible(self, frame_problem):
        demands = np.ones(frame_problem.n_links, dtype=int) * 2
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        for slot in frame.slots:
            assert frame_problem.is_feasible(slot.active)

    def test_unit_demands_match_multislot(self, frame_problem):
        """All-ones demand == the covering problem."""
        from repro.core.multislot import multislot_schedule

        demands = np.ones(frame_problem.n_links, dtype=int)
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        cover = multislot_schedule(frame_problem, rle_schedule)
        assert frame.length == cover.n_slots

    def test_zero_demand_skipped(self, frame_problem):
        demands = np.zeros(frame_problem.n_links, dtype=int)
        demands[3] = 2
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        assert frame.length == 2
        for slot in frame.slots:
            assert slot.active.tolist() == [3]

    def test_all_zero_empty_frame(self, frame_problem):
        frame = build_demand_frame(
            frame_problem, np.zeros(frame_problem.n_links, dtype=int), rle_schedule
        )
        assert frame.length == 0

    def test_frame_length_bounded_by_total_demand(self, frame_problem):
        rng = np.random.default_rng(1)
        demands = rng.integers(0, 3, frame_problem.n_links)
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        assert frame.length <= demands.sum()

    def test_validation(self, frame_problem):
        with pytest.raises(ValueError, match="length"):
            build_demand_frame(frame_problem, np.ones(3, dtype=int), rle_schedule)
        with pytest.raises(ValueError, match=">= 0"):
            build_demand_frame(
                frame_problem, -np.ones(frame_problem.n_links, dtype=int), rle_schedule
            )

    def test_empty_scheduler_detected(self, frame_problem):
        def lazy(problem):
            return Schedule.empty("lazy")

        with pytest.raises(RuntimeError, match="empty schedule"):
            build_demand_frame(
                frame_problem, np.ones(frame_problem.n_links, dtype=int), lazy
            )

    def test_scheduler_kwargs_forwarded(self, frame_problem):
        demands = np.ones(frame_problem.n_links, dtype=int)
        frame = build_demand_frame(frame_problem, demands, rle_schedule, c2=0.3)
        assert frame.verify(frame_problem)


class TestFrameVerify:
    def test_detects_unmet_demand(self, frame_problem):
        demands = np.ones(frame_problem.n_links, dtype=int)
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        tampered = Frame(slots=frame.slots[:-1], demands=demands, algorithm="x")
        assert not tampered.verify(frame_problem)


class TestLowerBound:
    def test_zero_for_no_demand(self, frame_problem):
        assert frame_length_lower_bound(
            frame_problem, np.zeros(frame_problem.n_links, dtype=int)
        ) == 0

    def test_max_demand_bound(self, frame_problem):
        demands = np.ones(frame_problem.n_links, dtype=int)
        demands[0] = 7
        assert frame_length_lower_bound(frame_problem, demands) >= 7

    def test_clique_demand_bound(self):
        """Stacked links' demands serialise."""
        n = 4
        senders = np.array([[0.0, float(i)] for i in range(n)])
        receivers = senders + np.array([10.0, 0.0])
        p = FadingRLS(links=LinkSet(senders=senders, receivers=receivers))
        demands = np.full(n, 3, dtype=int)
        assert frame_length_lower_bound(p, demands) >= 12

    def test_sound_against_actual_frame(self, frame_problem):
        rng = np.random.default_rng(2)
        demands = rng.integers(0, 3, frame_problem.n_links)
        lb = frame_length_lower_bound(frame_problem, demands)
        frame = build_demand_frame(frame_problem, demands, rle_schedule)
        assert lb <= frame.length
