"""End-to-end determinism of the parallel experiment pipeline.

``n_jobs`` must be invisible in every figure driver's output — these
run the real drivers (small configs) at several worker counts and
require exact equality, not statistical closeness.
"""

import numpy as np

from repro.core.ldp import ldp_schedule
from repro.core.rle import rle_schedule
from repro.experiments.ablations import rle_c2_ablation
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import failed_vs_links
from repro.experiments.fig6 import throughput_vs_alpha
from repro.experiments.tradeoff import eps_tradeoff


def _small(n_jobs=1):
    return ExperimentConfig(
        n_links_sweep=(20, 35),
        alpha_sweep=(2.5, 3.5),
        n_links_fixed=30,
        n_repetitions=2,
        n_trials=30,
        root_seed=2017,
        n_jobs=n_jobs,
    )


class TestFigureDriversParallel:
    def test_failed_vs_links_jobs_invariant(self):
        serial = failed_vs_links(_small(1))
        pooled = failed_vs_links(_small(4))
        assert serial.x_values == pooled.x_values
        for alg in serial.series:
            assert serial.metric(alg, "mean_failed") == pooled.metric(alg, "mean_failed")
            assert serial.metric(alg, "mean_throughput") == pooled.metric(
                alg, "mean_throughput"
            )
            assert serial.metric(alg, "failed_std") == pooled.metric(alg, "failed_std")

    def test_throughput_vs_alpha_jobs_invariant(self):
        serial = throughput_vs_alpha(_small(1))
        pooled = throughput_vs_alpha(_small(3))
        for alg in serial.series:
            assert serial.metric(alg, "mean_throughput") == pooled.metric(
                alg, "mean_throughput"
            )

    def test_mc_max_bytes_invariant(self):
        """The replay memory budget must not change any series value."""
        base = failed_vs_links(_small(1))
        tiny = failed_vs_links(
            ExperimentConfig(
                n_links_sweep=(20, 35),
                alpha_sweep=(2.5, 3.5),
                n_links_fixed=30,
                n_repetitions=2,
                n_trials=30,
                root_seed=2017,
                mc_max_bytes=50_000,
            )
        )
        for alg in base.series:
            assert base.metric(alg, "mean_failed") == tiny.metric(alg, "mean_failed")


class TestTradeoffParallel:
    def test_eps_tradeoff_jobs_invariant(self):
        kwargs = dict(
            schedulers={"rle": rle_schedule, "ldp": ldp_schedule},
            eps_values=(0.01, 0.1),
            n_links=25,
            n_repetitions=2,
            n_trials=25,
        )
        serial = eps_tradeoff(n_jobs=1, **kwargs)
        pooled = eps_tradeoff(n_jobs=2, **kwargs)
        assert len(serial) == len(pooled) == 4
        for a, b in zip(serial, pooled):
            assert (a.eps, a.algorithm) == (b.eps, b.algorithm)
            assert a.mean_scheduled == b.mean_scheduled
            assert a.mean_expected_goodput == b.mean_expected_goodput
            assert a.mean_failed == b.mean_failed


class TestAblationsParallel:
    def test_rle_c2_jobs_invariant(self):
        kwargs = dict(c2_values=(0.25, 0.75), n_links=30, n_repetitions=2)
        serial = rle_c2_ablation(n_jobs=1, **kwargs)
        pooled = rle_c2_ablation(n_jobs=2, **kwargs)
        assert serial.means == pooled.means
        assert serial.stds == pooled.stds


class TestConfigKnobs:
    def test_with_execution(self):
        cfg = ExperimentConfig()
        assert cfg.n_jobs == 1 and cfg.mc_max_bytes is None
        cfg2 = cfg.with_execution(n_jobs=8, mc_max_bytes=1 << 20)
        assert (cfg2.n_jobs, cfg2.mc_max_bytes) == (8, 1 << 20)
        # unspecified knobs are kept
        cfg3 = cfg2.with_execution(n_jobs=2)
        assert (cfg3.n_jobs, cfg3.mc_max_bytes) == (2, 1 << 20)

    def test_small_preserves_execution_knobs(self):
        cfg = ExperimentConfig(n_jobs=4, mc_max_bytes=123).small()
        assert (cfg.n_jobs, cfg.mc_max_bytes) == (4, 123)

    def test_workload_is_picklable(self):
        import pickle

        workload = ExperimentConfig().workload(50)
        clone = pickle.loads(pickle.dumps(workload))
        a, b = workload(7), clone(7)
        np.testing.assert_array_equal(a.senders, b.senders)
        np.testing.assert_array_equal(a.receivers, b.receivers)
