"""Tests for the adversarial scenario fuzzer (repro.verify.fuzz)."""

import numpy as np
import pytest

from repro.verify.fuzz import (
    FAMILIES,
    collinear_gadget,
    degenerate_ring,
    dense_cluster,
    fuzz_scenarios,
    make_scenario,
    near_duplicate_receivers,
    witness_set,
)


class TestGenerators:
    def test_near_duplicate_receiver_pairs(self):
        links = near_duplicate_receivers(10, separation=1e-6, seed=0)
        for k in range(5):
            gap = np.hypot(*(links.receivers[2 * k] - links.receivers[2 * k + 1]))
            assert gap <= np.sqrt(2) * 1e-6

    def test_near_duplicate_needs_pairs(self):
        with pytest.raises(ValueError):
            near_duplicate_receivers(1)

    def test_collinear_gadget_is_collinear_and_geometric(self):
        links = collinear_gadget(8, base_length=4.0, growth=2.0)
        assert np.all(links.senders[:, 1] == 0.0)
        assert np.all(links.receivers[:, 1] == 0.0)
        np.testing.assert_allclose(links.lengths[:4], [4.0, 8.0, 16.0, 32.0])
        np.testing.assert_allclose(links.lengths[4:], links.lengths[:4])

    def test_collinear_gadget_deterministic(self):
        a, b = collinear_gadget(6), collinear_gadget(6)
        np.testing.assert_array_equal(a.senders, b.senders)
        np.testing.assert_array_equal(a.receivers, b.receivers)

    def test_dense_cluster_stays_in_box(self):
        links = dense_cluster(12, box_side=30.0, seed=1)
        assert links.senders.min() >= 0.0 and links.senders.max() <= 30.0

    def test_degenerate_ring_distances_nearly_tie(self):
        links = degenerate_ring(10, radius=50.0, center_jitter=0.5, seed=2)
        d = links.sender_receiver_distances()
        # every sender-receiver distance is within ~2*jitter of the radius
        assert np.all(np.abs(d - 50.0) < 2.0)

    def test_degenerate_ring_needs_links(self):
        with pytest.raises(ValueError):
            degenerate_ring(0)


class TestWitnessSet:
    def test_feasible_by_construction(self, paper_problem):
        active = witness_set(paper_problem)
        assert active.size > 0
        assert paper_problem.is_feasible(active)

    def test_deterministic(self, paper_problem):
        np.testing.assert_array_equal(
            witness_set(paper_problem), witness_set(paper_problem)
        )

    def test_cap_bounds_size(self, paper_problem):
        assert witness_set(paper_problem, cap=3).size <= 3


class TestScenarioStream:
    def test_round_robin_families(self):
        scenarios = list(fuzz_scenarios(len(FAMILIES), seed=0))
        assert [s.family for s in scenarios] == list(FAMILIES)

    def test_deterministic_stream(self):
        a = [s.name for s in fuzz_scenarios(12, seed=5)]
        b = [s.name for s in fuzz_scenarios(12, seed=5)]
        assert a == b

    def test_seed_changes_instances(self):
        a = next(iter(fuzz_scenarios(1, seed=0)))
        b = next(iter(fuzz_scenarios(1, seed=1)))
        assert not np.array_equal(a.problem.links.senders, b.problem.links.senders)

    def test_names_unique_within_run(self):
        names = [s.name for s in fuzz_scenarios(25, seed=0)]
        assert len(set(names)) == len(names)

    def test_metadata_carries_channel_params(self):
        s = make_scenario("paper", 3, root_seed=0)
        assert s.metadata["alpha"] == s.problem.alpha
        assert s.metadata["eps"] == s.problem.eps

    def test_explicit_params_pin(self):
        s = make_scenario("dense-cluster", 0, root_seed=0, n_links=9, alpha=3.3)
        assert s.problem.n_links == 9
        assert s.problem.alpha == 3.3

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            make_scenario("nope", 0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            list(fuzz_scenarios(-1))
