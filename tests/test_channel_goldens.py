"""Byte-pinned golden draws for every registered channel law.

The goldens under ``tests/goldens/channel_*.json`` pin the exact
float64 bits each law's sampler produces for a fixed (topology, active
set, seed): the JSON stores the full values (``repr`` round-trips
doubles exactly) plus a SHA-256 of the raw buffer.  Regenerate only on
a deliberate contract change: ``python tools/regen_channel_goldens.py``.

The cross-process test re-computes one hash in a fresh interpreter, so
accidental dependence on in-process state (import order, a module-level
RNG) cannot hide.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

TOOLS_DIR = Path(__file__).parents[1] / "tools"
sys.path.insert(0, str(TOOLS_DIR))

from regen_channel_goldens import (  # noqa: E402
    GOLDEN_DIR,
    SPECS,
    golden_draw,
    sha256_of,
)

GOLDEN_FILES = sorted(GOLDEN_DIR.glob("channel_*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


class TestGoldenDraws:
    def test_one_golden_per_spec(self):
        assert len(GOLDEN_FILES) == len(SPECS)

    @pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
    def test_values_bit_identical(self, path):
        payload = _load(path)
        z = golden_draw(payload["spec"])
        assert list(z.shape) == payload["shape"]
        golden = np.array(payload["values"], dtype=np.float64)
        # Exact equality: JSON floats round-trip float64 bits.
        np.testing.assert_array_equal(z, golden)

    @pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
    def test_buffer_hash_matches(self, path):
        payload = _load(path)
        assert sha256_of(golden_draw(payload["spec"])) == payload["sha256"]

    def test_cross_process_hash(self):
        """A fresh interpreter reproduces the golden bits."""
        payload = _load(GOLDEN_FILES[0])
        code = (
            "import sys; sys.path.insert(0, {tools!r}); "
            "from regen_channel_goldens import golden_draw, sha256_of; "
            "print(sha256_of(golden_draw({spec!r})))"
        ).format(tools=str(TOOLS_DIR), spec=payload["spec"])
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == payload["sha256"]

    def test_goldens_differ_across_laws(self):
        hashes = {_load(p)["sha256"] for p in GOLDEN_FILES}
        assert len(hashes) == len(GOLDEN_FILES)
