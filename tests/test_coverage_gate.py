"""Unit tests for the stdlib coverage ratchet (tools/coverage_gate.py)."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import coverage_gate  # noqa: E402
from coverage_gate import (  # noqa: E402
    build_report,
    evaluate,
    executable_lines,
    start_tracing,
)


class TestExecutableLines:
    def test_docstrings_and_blanks_are_not_executable(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            textwrap.dedent(
                '''
                """Module docstring."""

                X = 1


                def f():
                    """Function docstring."""
                    return X
                '''
            )
        )
        lines = executable_lines(path)
        text = path.read_text().splitlines()
        assert {text[n - 1].strip() for n in lines} == {"X = 1", "def f():", "return X"}

    def test_pragma_no_cover_excludes_the_block(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            textwrap.dedent(
                """
                a = 1
                if a:  # pragma: no cover
                    b = 2
                    c = 3
                d = 4
                """
            )
        )
        stripped = {path.read_text().splitlines()[n - 1].strip() for n in executable_lines(path)}
        assert stripped == {"a = 1", "d = 4"}

    def test_type_checking_body_is_excluded(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            textwrap.dedent(
                """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from fake import Thing
                x = 1
                """
            )
        )
        stripped = {path.read_text().splitlines()[n - 1].strip() for n in executable_lines(path)}
        assert stripped == {"from typing import TYPE_CHECKING", "x = 1"}

    def test_global_and_decorators(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            textwrap.dedent(
                """
                import functools

                @functools.cache
                def f():
                    global _state
                    return 1
                """
            )
        )
        stripped = {path.read_text().splitlines()[n - 1].strip() for n in executable_lines(path)}
        assert "global _state" not in stripped
        assert "@functools.cache" in stripped


def _fake_tree(tmp_path, monkeypatch, sources):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    monkeypatch.setattr(coverage_gate, "ROOT", tmp_path)
    monkeypatch.setattr(coverage_gate, "SRC", src)
    paths = {}
    for name, body in sources.items():
        path = src / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        paths[name] = path
    return paths


class TestBuildReport:
    def test_percentages_and_total(self, tmp_path, monkeypatch):
        paths = _fake_tree(
            tmp_path,
            monkeypatch,
            {"a.py": "x = 1\ny = 2\n", "cache/b.py": "z = 3\nw = 4\n"},
        )
        executed = {
            str(paths["a.py"]): {1, 2},
            str(paths["cache/b.py"]): {1},
        }
        report = build_report(executed)
        assert report["files"]["repro/a.py"]["percent"] == 100.0
        assert report["files"]["repro/cache/b.py"]["percent"] == 50.0
        assert report["total"] == 75.0

    def test_untraced_file_counts_as_zero(self, tmp_path, monkeypatch):
        _fake_tree(tmp_path, monkeypatch, {"a.py": "x = 1\n"})
        report = build_report({})
        assert report["total"] == 0.0


def _report(total, python="3.11", files=None):
    return {"schema": 1, "python": python, "total": total, "files": files or {}}


class TestEvaluate:
    def test_passes_at_and_above_the_baseline(self):
        for total in (85.0, 84.6, 90.0):
            problems, _ = evaluate(_report(total), _report(85.0))
            assert problems == []

    def test_fails_below_the_tolerance(self):
        problems, _ = evaluate(_report(84.4), _report(85.0))
        assert len(problems) == 1
        assert "fell below" in problems[0]

    def test_version_mismatch_gets_extra_slack(self):
        current = _report(84.2, python="3.12")
        baseline = _report(85.0, python="3.11")
        problems, notes = evaluate(current, baseline)
        assert problems == []
        assert any("slack" in n for n in notes)
        problems, _ = evaluate(_report(83.4, python="3.12"), baseline)
        assert problems  # beyond even the widened slack

    def test_missing_baseline_is_a_note_not_a_failure(self):
        problems, notes = evaluate(_report(10.0), None)
        assert problems == []
        assert any("--stamp" in n for n in notes)

    def test_cache_module_floor(self):
        files = {
            "repro/cache/store.py": {"executable": 100, "covered": 80, "percent": 80.0},
            "repro/other.py": {"executable": 100, "covered": 10, "percent": 10.0},
        }
        problems, _ = evaluate(_report(90.0, files=files), _report(85.0))
        assert len(problems) == 1
        assert "repro/cache/store.py" in problems[0]
        assert "90% floor" in problems[0]

    def test_empty_cache_module_is_exempt(self):
        files = {"repro/cache/__init__.py": {"executable": 0, "covered": 0, "percent": 100.0}}
        problems, _ = evaluate(_report(90.0, files=files), _report(85.0))
        assert problems == []

    def test_service_module_floor(self):
        files = {
            "repro/service/broker.py": {"executable": 200, "covered": 160, "percent": 80.0},
            "repro/service/server.py": {"executable": 150, "covered": 140, "percent": 93.33},
        }
        problems, _ = evaluate(_report(90.0, files=files), _report(85.0))
        assert len(problems) == 1
        assert "repro/service/broker.py" in problems[0]
        assert "85% floor" in problems[0]
        assert "repro.service" in problems[0]

    def test_empty_service_module_is_exempt(self):
        files = {
            "repro/service/__init__.py": {"executable": 0, "covered": 0, "percent": 100.0}
        }
        problems, _ = evaluate(_report(90.0, files=files), _report(85.0))
        assert problems == []


class TestTracer:
    def test_records_repro_lines_and_restores_the_tracer(self):
        store = {}
        if sys.version_info >= (3, 12):
            try:
                stop = start_tracing(store)
            except ValueError:
                pytest.skip("sys.monitoring COVERAGE_ID already claimed")
            from repro.cache.fingerprint import config_key

            config_key("t", {"a": 1})
            stop()
        else:
            previous = sys.gettrace()
            stop = start_tracing(store)
            from repro.cache.fingerprint import config_key

            config_key("t", {"a": 1})
            stop()
            assert sys.gettrace() is previous
        fingerprint_file = str(coverage_gate.SRC / "cache" / "fingerprint.py")
        assert store.get(fingerprint_file)
