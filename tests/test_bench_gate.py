"""The benchmark regression gate must catch injected regressions."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_gate import compare, load_results, main  # noqa: E402


def _results_file(tmp_path: Path, name: str, results: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "results": results}))
    return path


def _entry(wall: float, **config) -> dict:
    return {"wall_seconds": wall, "recorded_unix": 0.0, "config": config}


BASELINE = {
    "smoke_fig5a": _entry(1.0),
    "incremental_speedup": _entry(0.05, speedup=9.0),
}


def test_gate_passes_on_identical_results(tmp_path):
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", BASELINE)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0


def test_gate_passes_within_allowance(tmp_path):
    current = {
        "smoke_fig5a": _entry(1.4),  # +40% < 50% allowance
        "incremental_speedup": _entry(0.06, speedup=6.0),  # -33% < 50%
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0


def test_gate_fails_on_injected_wall_time_regression(tmp_path, capsys):
    current = {
        "smoke_fig5a": _entry(2.0),  # +100% > 50% allowance
        "incremental_speedup": _entry(0.05, speedup=9.0),
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 1
    assert "REGRESSION smoke_fig5a" in capsys.readouterr().err


def test_gate_fails_on_injected_speedup_regression(tmp_path, capsys):
    current = {
        "smoke_fig5a": _entry(1.0),
        "incremental_speedup": _entry(0.05, speedup=2.0),  # 9x -> 2x
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 1
    assert "REGRESSION incremental_speedup" in capsys.readouterr().err


def test_gate_respects_custom_allowance(tmp_path):
    current = {"smoke_fig5a": _entry(1.4), "incremental_speedup": _entry(0.05, speedup=9.0)}
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    # 40% over: passes at 50% allowance, fails at 20%.
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    assert (
        main(
            ["--baseline", str(base), "--current", str(cur), "--max-regress", "0.2"]
        )
        == 1
    )


def test_unshared_benchmarks_are_reported_not_gated(tmp_path, capsys):
    base = _results_file(tmp_path, "base.json", {"gone": _entry(1.0)})
    cur = _results_file(tmp_path, "cur.json", {"fresh": _entry(99.0)})
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    out = capsys.readouterr().out
    assert "gone is in the baseline only" in out
    assert "fresh is new" in out


def test_tiny_wall_jitter_is_not_a_regression(tmp_path, capsys):
    """+53% on a 19ms bench is timer noise, not a regression."""
    base = _results_file(tmp_path, "base.json", {"tiny": _entry(0.019)})
    cur = _results_file(tmp_path, "cur.json", {"tiny": _entry(0.029)})
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    # With the jitter floor disabled the same delta fails.
    assert (
        main(
            ["--baseline", str(base), "--current", str(cur), "--abs-slack", "0"]
        )
        == 1
    )
    assert "REGRESSION tiny" in capsys.readouterr().err


def test_compare_ignores_zero_baseline_wall():
    failures = compare({"x": _entry(0.0)}, {"x": _entry(100.0)}, 0.5)
    assert failures == []


def test_load_results_rejects_malformed_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        load_results(bad)
    noresults = tmp_path / "noresults.json"
    noresults.write_text(json.dumps({"schema": 1}))
    with pytest.raises(SystemExit):
        load_results(noresults)


def test_gate_against_committed_results_self_compare():
    """The committed BENCH_RESULTS.json always passes against itself."""
    committed = Path(__file__).resolve().parent.parent / "BENCH_RESULTS.json"
    results = load_results(committed)
    assert compare(results, results, 0.5) == []
