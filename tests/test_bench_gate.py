"""The benchmark regression gate must catch injected regressions."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_gate import compare, load_results, main  # noqa: E402


def _results_file(tmp_path: Path, name: str, results: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "results": results}))
    return path


def _entry(wall: float, **config) -> dict:
    return {"wall_seconds": wall, "recorded_unix": 0.0, "config": config}


BASELINE = {
    "smoke_fig5a": _entry(1.0),
    "incremental_speedup": _entry(0.05, speedup=9.0),
}


def test_gate_passes_on_identical_results(tmp_path):
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", BASELINE)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0


def test_gate_passes_within_allowance(tmp_path):
    current = {
        "smoke_fig5a": _entry(1.4),  # +40% < 50% allowance
        "incremental_speedup": _entry(0.06, speedup=6.0),  # -33% < 50%
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0


def test_gate_fails_on_injected_wall_time_regression(tmp_path, capsys):
    current = {
        "smoke_fig5a": _entry(2.0),  # +100% > 50% allowance
        "incremental_speedup": _entry(0.05, speedup=9.0),
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 1
    assert "REGRESSION smoke_fig5a" in capsys.readouterr().err


def test_gate_fails_on_injected_speedup_regression(tmp_path, capsys):
    current = {
        "smoke_fig5a": _entry(1.0),
        "incremental_speedup": _entry(0.05, speedup=2.0),  # 9x -> 2x
    }
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    assert main(["--baseline", str(base), "--current", str(cur)]) == 1
    assert "REGRESSION incremental_speedup" in capsys.readouterr().err


def test_gate_respects_custom_allowance(tmp_path):
    current = {"smoke_fig5a": _entry(1.4), "incremental_speedup": _entry(0.05, speedup=9.0)}
    base = _results_file(tmp_path, "base.json", BASELINE)
    cur = _results_file(tmp_path, "cur.json", current)
    # 40% over: passes at 50% allowance, fails at 20%.
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    assert (
        main(
            ["--baseline", str(base), "--current", str(cur), "--max-regress", "0.2"]
        )
        == 1
    )


def test_unshared_benchmarks_are_reported_not_gated(tmp_path, capsys):
    base = _results_file(tmp_path, "base.json", {"gone": _entry(1.0)})
    cur = _results_file(tmp_path, "cur.json", {"fresh": _entry(99.0)})
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    out = capsys.readouterr().out
    assert "gone is in the baseline only" in out
    assert "fresh is new" in out


def test_tiny_wall_jitter_is_not_a_regression(tmp_path, capsys):
    """+53% on a 19ms bench is timer noise, not a regression."""
    base = _results_file(tmp_path, "base.json", {"tiny": _entry(0.019)})
    cur = _results_file(tmp_path, "cur.json", {"tiny": _entry(0.029)})
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    # With the jitter floor disabled the same delta fails.
    assert (
        main(
            ["--baseline", str(base), "--current", str(cur), "--abs-slack", "0"]
        )
        == 1
    )
    assert "REGRESSION tiny" in capsys.readouterr().err


def test_compare_ignores_zero_baseline_wall():
    failures = compare({"x": _entry(0.0)}, {"x": _entry(100.0)}, 0.5)
    assert failures == []


def test_load_results_rejects_malformed_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        load_results(bad)
    noresults = tmp_path / "noresults.json"
    noresults.write_text(json.dumps({"schema": 1}))
    with pytest.raises(SystemExit):
        load_results(noresults)


def test_gate_against_committed_results_self_compare():
    """The committed BENCH_RESULTS.json always passes against itself."""
    committed = Path(__file__).resolve().parent.parent / "BENCH_RESULTS.json"
    results = load_results(committed)
    assert compare(results, results, 0.5) == []


def test_all_speedup_prefixed_keys_are_gated():
    """`speedup_vs_serial` (and any speedup* key) is gated, not just `speedup`."""
    base = {"fanout": _entry(1.0, speedup_vs_serial=4.0)}
    cur = {"fanout": _entry(1.0, speedup_vs_serial=1.0)}  # 4x -> 1x
    failures = compare(base, cur, 0.5)
    assert len(failures) == 1 and "speedup_vs_serial" in failures[0]


def test_speedup_skipped_on_machine_mismatch():
    """A 4-core speedup baseline is not compared on a 1-core runner."""
    base = {"fanout": dict(_entry(1.0, speedup=4.0), machine_cpus=4)}
    cur = {"fanout": dict(_entry(1.0, speedup=0.7), machine_cpus=1)}
    notes: list = []
    failures = compare(base, cur, 0.5, notes=notes)
    assert failures == []
    assert len(notes) == 1 and "machine mismatch" in notes[0]


def test_wall_time_still_gated_on_machine_mismatch():
    base = {"fanout": dict(_entry(1.0, speedup=4.0), machine_cpus=4)}
    cur = {"fanout": dict(_entry(9.0, speedup=4.0), machine_cpus=1)}
    failures = compare(base, cur, 0.5)
    assert len(failures) == 1 and "wall time" in failures[0]


def test_payload_machine_cpus_fallback_for_unstamped_entries():
    """Entries without machine_cpus fall back to the file-level count."""
    base = {"fanout": _entry(1.0, speedup=4.0)}
    cur = {"fanout": _entry(1.0, speedup=0.7)}
    notes: list = []
    # Differing file-level counts -> skip.
    assert compare(base, cur, 0.5, baseline_cpus=4, current_cpus=1, notes=notes) == []
    assert len(notes) == 1
    # Same counts -> gated as before.
    failures = compare(base, cur, 0.5, baseline_cpus=4, current_cpus=4)
    assert len(failures) == 1
    # Unknown counts -> gated (status quo for legacy files).
    assert len(compare(base, cur, 0.5)) == 1


def test_main_logs_machine_mismatch_note(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(
        json.dumps(
            {
                "schema": 1,
                "machine": {"cpus": 4},
                "results": {"fanout": _entry(1.0, speedup=4.0)},
            }
        )
    )
    cur.write_text(
        json.dumps(
            {
                "schema": 1,
                "machine": {"cpus": 1},
                "results": {"fanout": _entry(1.0, speedup=0.7)},
            }
        )
    )
    assert main(["--baseline", str(base), "--current", str(cur)]) == 0
    assert "machine mismatch" in capsys.readouterr().out
