"""Cross-extension integration tests.

The extensions must compose: power control under queue dynamics, noise
with multi-slot frames, the distributed protocol feeding the simulator,
local search on top of everything.
"""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology


class TestPowerControlPlusQueues:
    def test_powered_problem_through_queue_sim(self):
        """Queue simulation on a per-link-power instance: Monte-Carlo
        respects the powers, greedy handles non-uniform power."""
        from repro.core.baselines.naive import greedy_fading_schedule
        from repro.core.powercontrol import distance_proportional_powers
        from repro.sim.network_sim import simulate_queues

        links = paper_topology(50, seed=0)
        base = FadingRLS(links=links, noise=1e-7)
        powered = base.with_powers(
            distance_proportional_powers(links, base.alpha, target_received=1e-3)
        )
        r = simulate_queues(powered, greedy_fading_schedule, n_slots=120, arrival_rate=0.05, seed=1)
        assert r.slot_efficiency >= 0.95
        assert r.deliveries > 0


class TestNoisePlusFrames:
    def test_demand_frame_under_noise(self):
        """Frames built on a noisy instance: serviceable links get their
        demands; unserviceable demands must be zeroed first."""
        from repro.core.frames import build_demand_frame
        from repro.core.rle import rle_schedule

        noise = 0.01005 / 15.0**3
        p = FadingRLS(links=paper_topology(60, seed=1), noise=noise)
        serviceable = p.serviceable()
        demands = np.where(serviceable, 2, 0)
        frame = build_demand_frame(p, demands, rle_schedule)
        assert frame.verify(p)

    def test_frame_with_unserviceable_demand_cannot_finish(self):
        from repro.core.frames import build_demand_frame
        from repro.core.rle import rle_schedule

        noise = 0.01005 / 12.0**3
        p = FadingRLS(links=paper_topology(60, seed=2), noise=noise)
        demands = np.full(60, 1, dtype=int)  # includes unserviceable links
        assert not p.serviceable().all()
        with pytest.raises(RuntimeError):
            build_demand_frame(p, demands, rle_schedule)


class TestProtocolPlusSimulation:
    def test_protocol_schedule_replays_cleanly(self):
        """The message-passing protocol's output honours the eps
        contract under the Monte-Carlo channel."""
        from repro.distributed import run_dls_protocol
        from repro.sim.montecarlo import simulate_schedule

        p = FadingRLS(links=paper_topology(150, seed=3))
        result = run_dls_protocol(p, seed=4)
        sim = simulate_schedule(p, result.schedule, n_trials=3000, seed=5)
        assert sim.mean_failed <= p.eps * max(result.schedule.size, 1) + 0.2


class TestLocalSearchEverywhere:
    def test_improves_protocol_output(self):
        from repro.core.localsearch import improve_schedule
        from repro.distributed import run_dls_protocol

        p = FadingRLS(links=paper_topology(150, seed=6))
        proto = run_dls_protocol(p, seed=7).schedule
        polished = improve_schedule(p, proto, seed=8)
        assert p.scheduled_rate(polished.active) >= p.scheduled_rate(proto.active)
        assert p.is_feasible(polished.active)

    def test_improves_under_noise(self):
        from repro.core.ldp import ldp_schedule
        from repro.core.localsearch import improve_schedule

        p = FadingRLS(links=paper_topology(120, seed=9), noise=1e-7)
        start = ldp_schedule(p)
        out = improve_schedule(p, start, seed=10)
        assert p.is_feasible(out.active)
        assert p.scheduled_rate(out.active) >= p.scheduled_rate(start.active)


class TestCertifyEverything:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda p: __import__("repro.core.rle", fromlist=["x"]).rle_schedule(p),
            lambda p: __import__("repro.core.ldp", fromlist=["x"]).ldp_schedule(p),
            lambda p: __import__("repro.core.localsearch", fromlist=["x"]).local_search_schedule(p, seed=0),
        ],
        ids=["rle", "ldp", "local_search"],
    )
    def test_certificates_for_all_schedulers(self, maker):
        from repro.core.certify import certify

        p = FadingRLS(links=paper_topology(100, seed=11), noise=1e-8)
        s = maker(p)
        cert = certify(p, s)
        assert cert.feasible
        # Certificate slack is consistent with the noise-aware budgets.
        for rb in cert.receivers:
            assert rb.budget <= p.gamma_eps + 1e-12
