"""Tests for the scheduler registry (repro.core.base)."""

import pytest

from repro.core.base import (
    SchedulerError,
    get_scheduler,
    list_schedulers,
    register_scheduler,
    run_scheduler,
)
from repro.core.schedule import Schedule


EXPECTED_BUILTINS = {
    "ldp",
    "rle",
    "dls",
    "approx_logn",
    "approx_diversity",
    "greedy",
    "longest_first",
    "random",
    "all_active",
    "brute_force",
    "branch_and_bound",
    "milp",
    "protocol",
    "protocol_mis",
    "local_search",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(list_schedulers())

    def test_get_known(self):
        assert callable(get_scheduler("ldp"))

    def test_get_unknown_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_scheduler("definitely_not_a_scheduler")

    def test_reregistration_same_name_rejected(self):
        def fake(problem):
            return Schedule.empty("fake")

        register_scheduler("_test_fake", fake)
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("_test_fake", lambda p: Schedule.empty("other"))
        # Registering the identical function again is idempotent.
        register_scheduler("_test_fake", fake)

    def test_decorator_form(self):
        @register_scheduler("_test_decorated")
        def decorated(problem):
            return Schedule.empty("decorated")

        assert get_scheduler("_test_decorated") is decorated

    def test_run_scheduler(self, tiny_problem):
        s = run_scheduler("rle", tiny_problem)
        assert isinstance(s, Schedule)
        assert s.algorithm == "rle"

    def test_scheduler_error_is_runtime_error(self):
        assert issubclass(SchedulerError, RuntimeError)


class TestAllSchedulersContract:
    """Every registered scheduler obeys the basic contract."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS - {"brute_force", "milp", "branch_and_bound"}))
    def test_returns_schedule_on_paper_instance(self, name, paper_problem):
        s = get_scheduler(name)(paper_problem)
        assert isinstance(s, Schedule)
        if s.size:
            assert s.active.max() < paper_problem.n_links

    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_empty_instance(self, name):
        from repro.core.problem import FadingRLS
        from repro.network.links import LinkSet

        p = FadingRLS(links=LinkSet.empty())
        s = get_scheduler(name)(p)
        assert s.size == 0

    @pytest.mark.parametrize(
        "name",
        sorted(
            EXPECTED_BUILTINS
            - {"all_active", "approx_logn", "approx_diversity", "protocol", "protocol_mis"}
        ),
    )
    def test_output_feasible_under_fading(self, name, small_problem):
        s = get_scheduler(name)(small_problem)
        assert small_problem.is_feasible(s.active), name
