"""Tests for repro.channel.sampling."""

import numpy as np
import pytest

from repro.channel.sampling import instantaneous_sinr, sample_fading_trials


def distances(n=3, own=10.0, cross=60.0):
    d = np.full((n, n), cross)
    np.fill_diagonal(d, own)
    return d


class TestSampleFadingTrials:
    def test_shape(self):
        z = sample_fading_trials(distances(4), np.array([0, 2]), 3.0, 5, seed=0)
        assert z.shape == (5, 2, 2)

    def test_zero_trials(self):
        z = sample_fading_trials(distances(3), np.array([0, 1]), 3.0, 0, seed=0)
        assert z.shape == (0, 2, 2)

    def test_empty_active(self):
        z = sample_fading_trials(distances(3), np.zeros(0, dtype=int), 3.0, 4, seed=0)
        assert z.shape == (4, 0, 0)

    def test_mean_matches_pathloss(self):
        d = distances(2)
        z = sample_fading_trials(d, np.array([0, 1]), 3.0, 100_000, seed=1)
        np.testing.assert_allclose(z.mean(axis=0), d[:2, :2] ** -3.0, rtol=0.05)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            sample_fading_trials(distances(2), np.array([0]), 3.0, -1)

    def test_out_of_range_active(self):
        with pytest.raises(IndexError):
            sample_fading_trials(distances(2), np.array([9]), 3.0, 1)

    def test_reproducible(self):
        a = sample_fading_trials(distances(2), np.array([0, 1]), 3.0, 3, seed=5)
        b = sample_fading_trials(distances(2), np.array([0, 1]), 3.0, 3, seed=5)
        np.testing.assert_array_equal(a, b)


class TestInstantaneousSinr:
    def test_manual_computation(self):
        z = np.array([[[4.0, 1.0], [2.0, 8.0]]])  # one trial, two links
        sinr = instantaneous_sinr(z)
        # Link 0: signal 4, interference 2 (from sender 1).
        # Link 1: signal 8, interference 1 (from sender 0).
        np.testing.assert_allclose(sinr, [[2.0, 8.0]])

    def test_noise_added(self):
        z = np.array([[[4.0, 0.0], [0.0, 8.0]]])
        sinr = instantaneous_sinr(z, noise=2.0)
        np.testing.assert_allclose(sinr, [[2.0, 4.0]])

    def test_lone_transmitter_infinite(self):
        z = np.array([[[3.0]]])
        assert np.isinf(instantaneous_sinr(z)[0, 0])

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            instantaneous_sinr(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            instantaneous_sinr(np.zeros((2, 3, 4)))
