"""Tests for repro.core.schedule."""

import numpy as np
import pytest

from repro.core.schedule import Schedule


class TestConstruction:
    def test_sorted_unique(self):
        s = Schedule(active=np.array([3, 1, 3, 2]))
        np.testing.assert_array_equal(s.active, [1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Schedule(active=np.array([-1, 2]))

    def test_empty(self):
        s = Schedule.empty("x")
        assert s.size == 0 and s.algorithm == "x"

    def test_immutable_active(self):
        s = Schedule(active=np.array([1, 2]))
        with pytest.raises(ValueError):
            s.active[0] = 9


class TestAccessors:
    def test_len_and_size(self):
        s = Schedule(active=np.array([0, 5]))
        assert len(s) == s.size == 2

    def test_contains(self):
        s = Schedule(active=np.array([0, 5]))
        assert 5 in s and 3 not in s

    def test_mask(self):
        s = Schedule(active=np.array([1, 3]))
        np.testing.assert_array_equal(s.mask(5), [False, True, False, True, False])

    def test_mask_out_of_range(self):
        s = Schedule(active=np.array([10]))
        with pytest.raises(ValueError):
            s.mask(5)

    def test_with_diagnostics_merges(self):
        s = Schedule(active=np.array([0]), diagnostics={"a": 1})
        s2 = s.with_diagnostics(b=2)
        assert s2.diagnostics == {"a": 1, "b": 2}
        assert s.diagnostics == {"a": 1}  # original untouched
