"""Backend selection threading: config, CLI, and executor fallback."""

import warnings

import numpy as np
import pytest

from repro.backend import base as backend_base
from repro.cli import build_parser
from repro.core.base import get_scheduler
from repro.experiments.config import ExperimentConfig, TopologyWorkload
from repro.sim.parallel import build_units, execute_units
from repro.sim.runner import run_schedulers

WORKLOAD = TopologyWorkload(n_links=20)
SCHEDULERS = {"rle": get_scheduler("rle")}


class TestConfigThreading:
    def test_default_backend(self):
        assert ExperimentConfig().backend == "numpy"

    def test_with_execution_sets_backend(self):
        cfg = ExperimentConfig().with_execution(backend="sharedmem")
        assert cfg.backend == "sharedmem"

    def test_with_execution_keeps_unspecified(self):
        cfg = ExperimentConfig().with_execution(backend="sharedmem")
        cfg2 = cfg.with_execution(n_jobs=2)
        assert cfg2.backend == "sharedmem" and cfg2.n_jobs == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentConfig().with_execution(backend="cuda")


class TestCLIFlag:
    def test_figures_accepts_backend(self):
        args = build_parser().parse_args(
            ["figures", "--panel", "fig5a", "--backend", "sharedmem"]
        )
        assert args.backend == "sharedmem"

    def test_report_accepts_backend(self):
        args = build_parser().parse_args(["report", "--backend", "numba"])
        assert args.backend == "numba"

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["figures", "--panel", "fig5a"])
        assert args.backend is None

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--backend", "cuda"])


class TestUnitThreading:
    def _units(self, backend):
        return build_units(
            SCHEDULERS,
            WORKLOAD,
            n_repetitions=1,
            n_trials=10,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=5,
            backend=backend,
        )

    def test_build_units_carries_backend(self):
        assert all(u.backend == "sharedmem" for u in self._units("sharedmem"))
        assert all(u.backend == "numpy" for u in self._units("numpy"))

    def test_unavailable_backend_warns_and_falls_back(self, monkeypatch):
        def _boom():
            raise ModuleNotFoundError("not here")

        monkeypatch.setitem(backend_base._FACTORIES, "numba", _boom)
        backend_base._instances.pop("numba", None)
        try:
            with pytest.warns(RuntimeWarning, match="numba"):
                results = execute_units(self._units("numba"), n_jobs=1)
        finally:
            backend_base._instances.pop("numba", None)
        reference = execute_units(self._units("numpy"), n_jobs=1)
        assert results[0].mean_failed == reference[0].mean_failed

    def test_run_schedulers_backend_kwarg(self):
        a = run_schedulers(
            SCHEDULERS, WORKLOAD, n_repetitions=1, n_trials=10, backend="numpy"
        )
        b = run_schedulers(
            SCHEDULERS, WORKLOAD, n_repetitions=1, n_trials=10, backend="sharedmem"
        )
        for ra, rb in zip(a["rle"].per_rep, b["rle"].per_rep):
            assert ra.mean_failed == rb.mean_failed
            assert np.array_equal(ra.per_link_success, rb.per_link_success)

    def test_available_backend_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            execute_units(self._units("sharedmem"), n_jobs=1)
