"""Tests for multi-slot covering (the future-work extension)."""

import numpy as np
import pytest

from repro.core.base import get_scheduler, list_schedulers
from repro.core.ldp import ldp_schedule
from repro.core.multislot import (
    MultiSlotSchedule,
    exact_min_slots,
    first_fit_multislot,
    multislot_lower_bound,
    multislot_schedule,
)
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology

#: Schedulers whose signature takes a ``seed`` keyword.
SEEDED = {"dls", "random", "protocol_mis"}


class TestMultiSlot:
    @pytest.mark.parametrize("scheduler", [ldp_schedule, rle_schedule])
    def test_covers_all_links(self, scheduler):
        p = FadingRLS(links=paper_topology(80, seed=0))
        ms = multislot_schedule(p, scheduler)
        assignment = ms.slot_of(p.n_links)
        assert (assignment >= 0).all()

    @pytest.mark.parametrize("scheduler", [ldp_schedule, rle_schedule])
    def test_each_slot_feasible(self, scheduler):
        p = FadingRLS(links=paper_topology(80, seed=1))
        ms = multislot_schedule(p, scheduler)
        for slot in ms.slots:
            assert p.is_feasible(slot.active)

    def test_slots_disjoint(self):
        p = FadingRLS(links=paper_topology(60, seed=2))
        ms = multislot_schedule(p, rle_schedule)
        seen = np.concatenate([s.active for s in ms.slots])
        assert len(seen) == len(set(seen.tolist())) == p.n_links

    def test_empty_instance(self):
        p = FadingRLS(links=LinkSet.empty())
        ms = multislot_schedule(p, rle_schedule)
        assert ms.n_slots == 0

    def test_rle_needs_fewer_slots_than_ldp(self):
        """RLE packs slots denser, so it covers in fewer slots."""
        wins = 0
        for seed in range(3):
            p = FadingRLS(links=paper_topology(100, seed=seed))
            n_rle = multislot_schedule(p, rle_schedule).n_slots
            n_ldp = multislot_schedule(p, ldp_schedule).n_slots
            if n_rle <= n_ldp:
                wins += 1
        assert wins == 3

    def test_no_progress_raises(self):
        def lazy(problem):
            return Schedule.empty("lazy")

        p = FadingRLS(links=paper_topology(5, seed=0))
        with pytest.raises(RuntimeError, match="empty schedule"):
            multislot_schedule(p, lazy)

    def test_max_slots_guard(self):
        def one_at_a_time(problem):
            return Schedule(active=np.array([0]), algorithm="one")

        p = FadingRLS(links=paper_topology(10, seed=0))
        with pytest.raises(RuntimeError, match="slots"):
            multislot_schedule(p, one_at_a_time, max_slots=3)

    def test_scheduler_kwargs_forwarded(self):
        p = FadingRLS(links=paper_topology(40, seed=3))
        ms = multislot_schedule(p, rle_schedule, c2=0.3)
        assert ms.slots[0].diagnostics["c2"] == 0.3


class TestCoverInvariant:
    """Every registered one-shot scheduler must produce a valid cover."""

    @pytest.mark.parametrize("name", list_schedulers())
    def test_cover_invariant(self, name):
        p = FadingRLS(links=paper_topology(10, seed=4))
        kwargs = {"seed": 0} if name in SEEDED else {}
        ms = multislot_schedule(p, get_scheduler(name), **kwargs)
        assignment = ms.slot_of(p.n_links)
        # slot_of validates disjointness + coverage; also pin the
        # assignment against the slots themselves.
        for t, slot in enumerate(ms.slots):
            assert np.all(assignment[slot.active] == t)
        assert 1 <= ms.n_slots <= p.n_links

    @pytest.mark.parametrize("name", ["ldp", "rle", "greedy", "local_search"])
    def test_feasible_scheduler_gives_feasible_cover(self, name):
        """Feasibility-preserving schedulers yield all-feasible slots."""
        p = FadingRLS(links=paper_topology(30, seed=5))
        ms = multislot_schedule(p, get_scheduler(name))
        for slot in ms.slots:
            assert p.is_feasible(slot.active)

    def test_single_link_instance(self):
        p = FadingRLS(links=paper_topology(1, seed=0))
        ms = multislot_schedule(p, rle_schedule)
        assert ms.n_slots == 1
        np.testing.assert_array_equal(ms.slots[0].active, [0])
        np.testing.assert_array_equal(ms.slot_of(1), [0])

    def test_first_fit_single_link_and_empty(self):
        single = FadingRLS(links=paper_topology(1, seed=0))
        assert first_fit_multislot(single).n_slots == 1
        empty = FadingRLS(links=LinkSet.empty())
        assert first_fit_multislot(empty).n_slots == 0

    def test_exact_min_slots_single_link_and_empty(self):
        single = FadingRLS(links=paper_topology(1, seed=0))
        assert exact_min_slots(single).n_slots == 1
        empty = FadingRLS(links=LinkSet.empty())
        assert exact_min_slots(empty).n_slots == 0


class TestSlotOf:
    def test_duplicate_assignment_detected(self):
        ms = MultiSlotSchedule(
            slots=[Schedule(active=np.array([0, 1])), Schedule(active=np.array([1]))],
            algorithm="x",
        )
        with pytest.raises(ValueError, match="two slots"):
            ms.slot_of(2)

    def test_missing_link_detected(self):
        ms = MultiSlotSchedule(slots=[Schedule(active=np.array([0]))], algorithm="x")
        with pytest.raises(ValueError, match="unassigned"):
            ms.slot_of(2)

    def test_empty_frame_all_unassigned(self):
        ms = MultiSlotSchedule(slots=[], algorithm="x")
        with pytest.raises(ValueError, match="unassigned"):
            ms.slot_of(1)

    def test_zero_links_empty_frame_is_valid(self):
        ms = MultiSlotSchedule(slots=[], algorithm="x")
        assert ms.slot_of(0).size == 0

    def test_valid_assignment_roundtrip(self):
        ms = MultiSlotSchedule(
            slots=[
                Schedule(active=np.array([2, 0])),
                Schedule(active=np.array([1])),
            ],
            algorithm="x",
        )
        np.testing.assert_array_equal(ms.slot_of(3), [0, 1, 0])


class TestSlotCycle:
    def test_cycles_through_frame(self):
        slots = [
            Schedule(active=np.array([0])),
            Schedule(active=np.array([1])),
            Schedule(active=np.array([2])),
        ]
        ms = MultiSlotSchedule(slots=slots, algorithm="x")
        for t in range(9):
            assert ms.slot_cycle(t) is slots[t % 3]

    def test_empty_frame_raises(self):
        ms = MultiSlotSchedule(slots=[], algorithm="x")
        with pytest.raises(ValueError, match="empty"):
            ms.slot_cycle(0)


class TestLowerBound:
    def test_zero_for_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert multislot_lower_bound(p) == 0

    def test_at_least_one(self, paper_problem):
        assert multislot_lower_bound(paper_problem) >= 1

    def test_sound_against_actual_slots(self):
        """The bound never exceeds what a real covering uses."""
        for seed in range(3):
            p = FadingRLS(links=paper_topology(60, seed=seed))
            lb = multislot_lower_bound(p)
            used = multislot_schedule(p, rle_schedule).n_slots
            assert lb <= used

    def test_detects_conflicting_cluster(self):
        """Links stacked on one spot mutually conflict -> bound grows."""
        n = 5
        senders = np.array([[0.0, float(i)] for i in range(n)])
        receivers = senders + np.array([10.0, 0.0])
        p = FadingRLS(links=LinkSet(senders=senders, receivers=receivers))
        assert multislot_lower_bound(p) >= n - 1
