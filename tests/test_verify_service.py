"""The ``service-vs-direct`` differential check and its reason codes.

Clean scenarios must pass; each reason code must fire when its seam is
corrupted (the monkeypatch-the-module-helper pattern the cache check
established).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.topology import paper_topology
from repro.verify import service as verify_service
from repro.verify.differential import DIFFERENTIAL_CHECKS
from repro.verify.fuzz import Scenario, fuzz_scenarios
from repro.verify.harness import all_checks
from repro.verify.service import (
    CODE_SERVICE_ACCOUNTING,
    CODE_SERVICE_BACKPRESSURE,
    CODE_SERVICE_COALESCE,
    CODE_SERVICE_SCHEDULE,
    check_service_vs_direct,
)


def _scenario(n=10, seed=3, **problem_kwargs):
    problem = FadingRLS(links=paper_topology(n, seed=seed), **problem_kwargs)
    return Scenario(name=f"t-{n}-{seed}", family="paper", problem=problem, seed=seed)


def _codes(mismatches):
    return {m.code for m in mismatches}


class TestRegistration:
    def test_check_is_registered(self):
        assert DIFFERENTIAL_CHECKS["service-vs-direct"] is check_service_vs_direct

    def test_check_reaches_the_harness(self):
        assert "service-vs-direct" in all_checks()

    def test_reason_codes_are_stable_strings(self):
        assert CODE_SERVICE_SCHEDULE == "service-schedule-divergence"
        assert CODE_SERVICE_COALESCE == "service-coalesce-divergence"
        assert CODE_SERVICE_BACKPRESSURE == "service-backpressure-nondeterminism"
        assert CODE_SERVICE_ACCOUNTING == "service-accounting-loss"


class TestCleanScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_paper_scenarios_pass(self, seed):
        assert check_service_vs_direct(_scenario(seed=seed)) == []

    def test_fuzzer_corpus_slice_passes(self):
        for sc in fuzz_scenarios(6, seed=1):
            assert check_service_vs_direct(sc) == []

    def test_noisy_scenario_passes(self):
        assert check_service_vs_direct(_scenario(noise=0.01)) == []

    def test_large_instances_are_truncated(self):
        scenario = _scenario(n=40)
        truncated = verify_service._service_problem(scenario.problem)
        assert truncated.n_links == verify_service._MAX_LINKS
        assert check_service_vs_direct(scenario) == []


class TestFaultDetection:
    """Each reason code fires when its seam is corrupted."""

    def test_schedule_divergence_fires(self, monkeypatch):
        empty = Schedule(active=np.array([], dtype=np.int64), algorithm="rle")
        monkeypatch.setattr(verify_service, "_direct_schedule", lambda p: empty)
        mismatches = check_service_vs_direct(_scenario())
        assert CODE_SERVICE_SCHEDULE in _codes(mismatches)
        # every served copy (computed + coalesced + replay) diverges
        divergent = [m for m in mismatches if m.code == CODE_SERVICE_SCHEDULE]
        assert len(divergent) == verify_service._N_DUPLICATES + 1

    def test_coalesce_divergence_fires(self, monkeypatch):
        real = verify_service._drive_serving

        async def no_coalescing(problem):
            out = await real(problem)
            stats = dict(out["stats"])
            stats["coalesced"] = 0  # claim nothing coalesced
            return {**out, "stats": stats}

        monkeypatch.setattr(verify_service, "_drive_serving", no_coalescing)
        mismatches = check_service_vs_direct(_scenario())
        assert _codes(mismatches) == {CODE_SERVICE_COALESCE}

    def test_backpressure_nondeterminism_fires(self, monkeypatch):
        def all_same(problem):
            # identical burst problems coalesce instead of filling the
            # queue, so the accept/reject pattern shifts
            return [problem] * verify_service._BURST

        monkeypatch.setattr(verify_service, "_burst_problems", all_same)
        mismatches = check_service_vs_direct(_scenario())
        assert CODE_SERVICE_BACKPRESSURE in _codes(mismatches)

    def test_accounting_loss_fires(self, monkeypatch):
        real = verify_service._drive_backpressure

        async def lossy(problems):
            out = await real(problems)
            stats = dict(out["stats"])
            stats["requests"] += 1  # one phantom request, never resolved
            return {**out, "stats": stats}

        monkeypatch.setattr(verify_service, "_drive_backpressure", lossy)
        mismatches = check_service_vs_direct(_scenario())
        assert CODE_SERVICE_ACCOUNTING in _codes(mismatches)

    def test_tiny_scenarios_are_skipped(self):
        assert check_service_vs_direct(_scenario(n=1, seed=0)) == []
