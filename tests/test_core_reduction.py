"""Tests for the Theorem 3.2 Knapsack reduction."""

import numpy as np
import pytest

from repro.core.exact import branch_and_bound_schedule
from repro.core.reduction import (
    KnapsackInstance,
    gate_budget_exact,
    reduce_knapsack,
    solve_knapsack_brute,
    solve_knapsack_dp,
    solve_knapsack_via_scheduling,
)


def random_instance(rng, n=8, max_v=20, max_w=15, cap=30.0):
    return KnapsackInstance(
        values=rng.integers(1, max_v, n).astype(float),
        weights=rng.integers(1, max_w, n).astype(float),
        capacity=cap,
    )


class TestKnapsackInstance:
    def test_valid(self):
        k = KnapsackInstance(values=[1.0, 2.0], weights=[3.0, 4.0], capacity=5.0)
        assert k.n_items == 2

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=[1.0], weights=[1.0, 2.0], capacity=5.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=[0.0], weights=[1.0], capacity=5.0)
        with pytest.raises(ValueError):
            KnapsackInstance(values=[1.0], weights=[-1.0], capacity=5.0)
        with pytest.raises(ValueError):
            KnapsackInstance(values=[1.0], weights=[1.0], capacity=0.0)


class TestDpSolver:
    def test_trivial(self):
        k = KnapsackInstance(values=[10.0], weights=[5.0], capacity=5.0)
        v, chosen = solve_knapsack_dp(k)
        assert v == 10.0 and chosen == [0]

    def test_item_too_heavy(self):
        k = KnapsackInstance(values=[10.0], weights=[6.0], capacity=5.0)
        v, chosen = solve_knapsack_dp(k)
        assert v == 0.0 and chosen == []

    def test_classic_example(self):
        k = KnapsackInstance(
            values=[60.0, 100.0, 120.0], weights=[10.0, 20.0, 30.0], capacity=50.0
        )
        v, chosen = solve_knapsack_dp(k)
        assert v == 220.0 and sorted(chosen) == [1, 2]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        k = random_instance(rng)
        v_dp, chosen_dp = solve_knapsack_dp(k)
        v_bf, _ = solve_knapsack_brute(k)
        assert v_dp == pytest.approx(v_bf)
        # Recovered set is consistent with its value and capacity.
        assert k.values[chosen_dp].sum() == pytest.approx(v_dp)
        assert k.weights[chosen_dp].sum() <= k.capacity + 1e-9

    def test_brute_force_limit(self):
        rng = np.random.default_rng(0)
        k = random_instance(rng, n=21)
        with pytest.raises(ValueError):
            solve_knapsack_brute(k)


class TestReduction:
    def test_structure(self):
        k = KnapsackInstance(values=[5.0, 7.0], weights=[3.0, 4.0], capacity=6.0)
        red = reduce_knapsack(k)
        assert red.problem.n_links == 3
        assert red.gate_index == 2
        assert red.threshold == 24.0  # 2 * (5 + 7)
        # Gate link: length exactly 1, receiver at origin.
        np.testing.assert_allclose(red.problem.links.receivers[2], [0.0, 0.0])
        assert red.problem.links.lengths[2] == pytest.approx(1.0)
        # Gate rate dominates all item values combined.
        assert red.problem.links.rates[2] == 2 * k.values.sum()

    def test_gate_interference_encodes_weights_exactly(self):
        """The heart of Thm 3.2: f(item i -> gate) == gamma_eps * w_i / W."""
        rng = np.random.default_rng(1)
        k = random_instance(rng)
        red = reduce_knapsack(k)
        g = gate_budget_exact(k, red)
        expected = red.problem.gamma_eps * k.weights / k.capacity
        np.testing.assert_allclose(g, expected, rtol=1e-10)

    def test_item_links_always_informed(self):
        """Certified delta: item links survive any active set."""
        rng = np.random.default_rng(2)
        k = random_instance(rng)
        red = reduce_knapsack(k)
        p = red.problem
        # Worst case: everything transmits at once.
        informed = p.informed(np.arange(p.n_links))
        assert informed[: k.n_items].all()

    def test_gate_feasible_iff_weights_fit(self):
        k = KnapsackInstance(
            values=[1.0, 1.0, 1.0], weights=[3.0, 4.0, 5.0], capacity=7.0
        )
        red = reduce_knapsack(k)
        p = red.problem
        gate = red.gate_index
        # {0, 1}: weights 7 <= 7 -> gate + items feasible.
        assert p.is_feasible([0, 1, gate])
        # {1, 2}: weights 9 > 7 -> infeasible with the gate...
        assert not p.is_feasible([1, 2, gate])
        # ...but fine without it (item links are robust).
        assert p.is_feasible([1, 2])

    def test_duplicate_weights_supported(self):
        """The angular-spread deviation: equal weights would collapse
        the paper's collinear construction."""
        k = KnapsackInstance(
            values=[2.0, 3.0, 4.0], weights=[5.0, 5.0, 5.0], capacity=10.0
        )
        red = reduce_knapsack(k)
        v, chosen = solve_knapsack_via_scheduling(k, branch_and_bound_schedule)
        assert v == 7.0  # best two of three equal-weight items

    @pytest.mark.parametrize("seed", range(8))
    def test_scheduling_recovers_knapsack_optimum(self, seed):
        """End-to-end: exact scheduling of the reduced instance == DP."""
        rng = np.random.default_rng(seed)
        k = random_instance(rng)
        v_dp, _ = solve_knapsack_dp(k)
        v_sched, chosen = solve_knapsack_via_scheduling(k, branch_and_bound_schedule)
        assert v_sched == pytest.approx(v_dp)
        assert k.weights[chosen].sum() <= k.capacity + 1e-6

    def test_decision_threshold_semantics(self):
        """Rate >= threshold + C iff knapsack value >= C."""
        rng = np.random.default_rng(3)
        k = random_instance(rng)
        red = reduce_knapsack(k)
        v_opt, _ = solve_knapsack_dp(k)
        sched = branch_and_bound_schedule(red.problem)
        total = red.problem.scheduled_rate(sched.active)
        assert total == pytest.approx(red.threshold + v_opt)
