"""Tests for first-fit packing and the exact slot minimiser."""

import numpy as np
import pytest

from repro.core.multislot import (
    exact_min_slots,
    first_fit_multislot,
    multislot_lower_bound,
    multislot_schedule,
)
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestFirstFit:
    @pytest.mark.parametrize("order", ["length", "rate", "random"])
    def test_covers_disjointly(self, order):
        p = FadingRLS(links=paper_topology(80, seed=0))
        ms = first_fit_multislot(p, order=order, seed=0)
        assignment = ms.slot_of(p.n_links)
        assert (assignment >= 0).all()

    @pytest.mark.parametrize("order", ["length", "rate"])
    def test_each_slot_feasible(self, order):
        p = FadingRLS(links=paper_topology(80, seed=1))
        ms = first_fit_multislot(p, order=order)
        for slot in ms.slots:
            assert p.is_feasible(slot.active)

    def test_fewer_slots_than_rle_covering(self):
        """First-fit packs much denser than RLE covering."""
        p = FadingRLS(links=paper_topology(100, seed=2))
        ff = first_fit_multislot(p).n_slots
        cover = multislot_schedule(p, rle_schedule).n_slots
        assert ff < cover

    def test_at_least_lower_bound(self):
        for seed in range(3):
            p = FadingRLS(links=paper_topology(60, seed=seed))
            assert first_fit_multislot(p).n_slots >= multislot_lower_bound(p)

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert first_fit_multislot(p).n_slots == 0

    def test_unknown_order(self):
        p = FadingRLS(links=paper_topology(5, seed=0))
        with pytest.raises(ValueError, match="order"):
            first_fit_multislot(p, order="alphabetical")

    def test_unserviceable_rejected(self):
        p = FadingRLS(links=paper_topology(10, seed=0), noise=1.0)
        with pytest.raises(ValueError, match="unserviceable"):
            first_fit_multislot(p)

    def test_feasible_with_noise(self):
        p = FadingRLS(links=paper_topology(60, seed=3), noise=0.002 / 20.0**3)
        ms = first_fit_multislot(p)
        for slot in ms.slots:
            assert p.is_feasible(slot.active)


class TestExactMinSlots:
    def test_limit_guard(self):
        p = FadingRLS(links=paper_topology(20, seed=0))
        with pytest.raises(ValueError, match="limit"):
            exact_min_slots(p)

    def test_matches_or_beats_first_fit(self):
        for seed in range(4):
            p = FadingRLS(links=paper_topology(8, region_side=100, seed=seed))
            exact = exact_min_slots(p)
            ff = first_fit_multislot(p)
            assert exact.n_slots <= ff.n_slots
            # Coverage and feasibility of the exact solution.
            assert (exact.slot_of(p.n_links) >= 0).all()
            for slot in exact.slots:
                assert p.is_feasible(slot.active)

    def test_respects_lower_bound(self):
        for seed in range(3):
            p = FadingRLS(links=paper_topology(8, region_side=100, seed=seed))
            assert exact_min_slots(p).n_slots >= multislot_lower_bound(p)

    def test_independent_links_one_slot(self):
        p = FadingRLS(links=paper_topology(6, region_side=5000, seed=0))
        assert exact_min_slots(p).n_slots == 1

    def test_stacked_links_n_slots(self):
        """Fully conflicting links need one slot each."""
        n = 4
        senders = np.array([[0.0, float(i)] for i in range(n)])
        receivers = senders + np.array([10.0, 0.0])
        p = FadingRLS(links=LinkSet(senders=senders, receivers=receivers))
        assert exact_min_slots(p).n_slots == n

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert exact_min_slots(p).n_slots == 0
