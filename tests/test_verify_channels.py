"""Channel-law oracles (`repro.verify.channels`).

Three layers: the relations/differential hold on real fuzz scenarios,
fault injection proves each reason code actually fires, and Hypothesis
property tests widen the spec-round-trip and stream-contract claims
beyond the pinned cases in ``tests/test_channel_laws.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.laws import NakagamiLaw, ShadowingLaw, get_channel_law
from repro.channel.sampling import iter_fading_trials, sample_fading_trials
from repro.network.topology import paper_topology
from repro.verify import channels
from repro.verify.channels import (
    CODE_CHANNEL_CHUNK,
    CODE_CHANNEL_RAYLEIGH,
    CODE_DETERMINISTIC_CLOSED_FORM,
    CODE_NAKAGAMI_CLOSED_FORM,
    CODE_NAKAGAMI_MONOTONICITY,
    CODE_SHADOWING_LIMIT,
    check_channel_vs_rayleigh,
    relation_nakagami_monotonicity,
    relation_nakagami_unit,
    relation_shadowing_zero,
)
from repro.verify.fuzz import FAMILIES, make_scenario

ALPHA = 3.0
_LINKS = paper_topology(6, seed=17)
_DISTANCES = None  # filled lazily below


def _geometry():
    global _DISTANCES
    if _DISTANCES is None:
        from repro.core.problem import FadingRLS

        _DISTANCES = FadingRLS(links=_LINKS, alpha=ALPHA).distances()
    return _DISTANCES, np.array([0, 2, 4, 5])


class TestChecksHoldOnFuzzScenarios:
    """The oracles are theorems about correct code: no mismatches."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_relations_pass(self, family):
        scenario = make_scenario(family, 0, root_seed=0)
        assert relation_shadowing_zero(scenario) == []
        assert relation_nakagami_unit(scenario) == []
        assert relation_nakagami_monotonicity(scenario) == []

    @pytest.mark.parametrize("family", FAMILIES)
    def test_differential_passes(self, family):
        scenario = make_scenario(family, 0, root_seed=0)
        assert check_channel_vs_rayleigh(scenario) == []


def _patched_simulate(monkeypatch, corrupt_channel):
    """Wrap ``channels.simulate_trials`` to flip successes for one spec."""
    real = channels.simulate_trials

    def fake(p, active, n_trials, seed=None, channel=None, **kwargs):
        out = real(p, active, n_trials, seed=seed, channel=channel, **kwargs)
        if channel == corrupt_channel:
            out = np.logical_not(out)
        return out

    monkeypatch.setattr(channels, "simulate_trials", fake)


class TestFaultInjection:
    """Each reason code fires when its invariant is deliberately broken."""

    def test_shadowing_limit_divergence(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        _patched_simulate(monkeypatch, "shadowing:sigma_db=0")
        mismatches = relation_shadowing_zero(scenario)
        assert mismatches and all(m.code == CODE_SHADOWING_LIMIT for m in mismatches)

    def test_nakagami_closed_form_divergence(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        _patched_simulate(monkeypatch, "nakagami:m=1")
        mismatches = relation_nakagami_unit(scenario)
        assert mismatches
        assert all(m.code == CODE_NAKAGAMI_CLOSED_FORM for m in mismatches)
        assert all(m.check == "nakagami-unit-closed-form" for m in mismatches)

    def test_nakagami_monotonicity_violation(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        real = channels.simulate_trials

        def fake(p, active, n_trials, seed=None, channel=None, **kwargs):
            out = real(p, active, n_trials, seed=seed, channel=channel, **kwargs)
            if channel == "nakagami:m=8":
                out = np.zeros_like(out)  # higher m suddenly always fails
            return out

        monkeypatch.setattr(channels, "simulate_trials", fake)
        mismatches = relation_nakagami_monotonicity(scenario)
        assert mismatches
        assert all(m.code == CODE_NAKAGAMI_MONOTONICITY for m in mismatches)

    def test_channel_rayleigh_divergence(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        _patched_simulate(monkeypatch, "rayleigh")
        codes = {m.code for m in check_channel_vs_rayleigh(scenario)}
        assert CODE_CHANNEL_RAYLEIGH in codes

    def test_channel_chunk_divergence(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        real = channels.iter_fading_trials

        def fake(*args, **kwargs):
            for chunk in real(*args, **kwargs):
                yield chunk * 1.0000001  # stream drifts from the batch

        monkeypatch.setattr(channels, "iter_fading_trials", fake)
        mismatches = check_channel_vs_rayleigh(scenario)
        assert mismatches and all(m.code == CODE_CHANNEL_CHUNK for m in mismatches)

    def test_deterministic_closed_form_divergence(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        _patched_simulate(monkeypatch, "deterministic")
        codes = {m.code for m in check_channel_vs_rayleigh(scenario)}
        assert CODE_DETERMINISTIC_CLOSED_FORM in codes

    def test_mismatches_name_scenario(self, monkeypatch):
        scenario = make_scenario("paper", 0, root_seed=0)
        _patched_simulate(monkeypatch, "shadowing:sigma_db=0")
        (m,) = relation_shadowing_zero(scenario)
        assert m.scenario == scenario.name


class TestSpecRoundTripProperties:
    @given(m=st.floats(min_value=0.1, max_value=32.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_nakagami_spec_round_trips(self, m):
        law = NakagamiLaw(m=m)
        again = get_channel_law(law.spec)
        assert again == law
        assert again.spec == law.spec

    @given(
        sigma=st.floats(min_value=0.0, max_value=16.0, allow_nan=False),
        static=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_shadowing_spec_round_trips(self, sigma, static):
        law = ShadowingLaw(sigma_db=sigma, static=static)
        again = get_channel_law(law.spec)
        assert again == law
        assert again.spec == law.spec


class TestStreamContractProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk=st.integers(min_value=1, max_value=25),
        spec=st.sampled_from(
            ("nakagami:m=2", "nakagami:m=0.5", "shadowing:sigma_db=5", "rayleigh")
        ),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_chunk_invariance(self, seed, chunk, spec):
        d, active = _geometry()
        law = get_channel_law(spec)
        batched = sample_fading_trials(d, active, ALPHA, 21, seed=seed, law=law)
        streamed = np.concatenate(
            list(
                iter_fading_trials(
                    d, active, ALPHA, 21, seed=seed, chunk_trials=chunk, law=law
                )
            )
        )
        np.testing.assert_array_equal(batched, streamed)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sigma_zero_recovers_rayleigh_bits(self, seed):
        d, active = _geometry()
        rayleigh = sample_fading_trials(d, active, ALPHA, 12, seed=seed)
        shadow0 = sample_fading_trials(
            d, active, ALPHA, 12, seed=seed, law="shadowing:sigma_db=0"
        )
        np.testing.assert_array_equal(rayleigh, shadow0)
