"""Arrival-generator tests: validation, scaling, golden-trace determinism.

The golden files under ``tests/goldens/workload_<family>.json`` pin the
exact byte content of each family's default trace at a fixed seed.  A
mismatch means the determinism contract broke — a numpy draw was
reordered, a parameter default changed, or platform-dependent
randomness crept in.  Regenerate them (consciously!) with::

    PYTHONPATH=src python tools/regen_workload_goldens.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.workload.generators import (
    ARRIVAL_FAMILIES,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    SpikeArrivals,
    arrivals_from_spec,
    spec_of,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(rate=-0.1)

    def test_nan_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(rate=float("nan"))

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="p_on"):
            OnOffArrivals(p_on=1.5)

    def test_period_bounds(self):
        with pytest.raises(ValueError, match="period"):
            DiurnalArrivals(period=0)

    def test_spike_offset_bounds(self):
        with pytest.raises(ValueError, match="offset"):
            SpikeArrivals(spike_every=10, offset=10)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError, match="n_links"):
            PoissonArrivals().sample(-1, 10, seed=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival family"):
            arrivals_from_spec({"family": "fractal"})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            arrivals_from_spec({"family": "poisson", "lambda": 0.1})

    def test_missing_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            arrivals_from_spec({"rate": 0.1})


class TestSemantics:
    @pytest.mark.parametrize("family", sorted(ARRIVAL_FAMILIES))
    def test_spec_roundtrip(self, family):
        gen = ARRIVAL_FAMILIES[family]()
        assert arrivals_from_spec(spec_of(gen)) == gen

    @pytest.mark.parametrize("family", sorted(ARRIVAL_FAMILIES))
    def test_sample_shape_and_dtype(self, family):
        trace = ARRIVAL_FAMILIES[family]().sample(3, 17, seed=5)
        assert trace.shape == (17, 3)
        assert trace.dtype == np.int64
        assert (trace >= 0).all()

    @pytest.mark.parametrize("family", sorted(ARRIVAL_FAMILIES))
    def test_zero_shapes(self, family):
        gen = ARRIVAL_FAMILIES[family]()
        assert gen.sample(0, 5, seed=0).shape == (5, 0)
        assert gen.sample(5, 0, seed=0).shape == (0, 5)

    @pytest.mark.parametrize("family", sorted(ARRIVAL_FAMILIES))
    def test_scaled_mean_rate(self, family):
        gen = ARRIVAL_FAMILIES[family]()
        assert gen.scaled(2.5).mean_rate() == pytest.approx(2.5 * gen.mean_rate())

    def test_scaled_zero_silences_poisson(self):
        trace = PoissonArrivals(0.4).scaled(0.0).sample(4, 50, seed=1)
        assert trace.sum() == 0

    def test_empirical_mean_tracks_mean_rate(self):
        for family, cls in sorted(ARRIVAL_FAMILIES.items()):
            gen = cls()
            trace = gen.sample(50, 4000, seed=9)
            assert trace.mean() == pytest.approx(gen.mean_rate(), rel=0.25), family

    def test_onoff_duty_cycle(self):
        gen = OnOffArrivals(p_on=0.1, p_off=0.3)
        assert gen.duty == pytest.approx(0.25)
        assert OnOffArrivals(p_on=0.0, p_off=0.0).duty == 0.0

    def test_diurnal_rate_curve(self):
        gen = DiurnalArrivals(base_rate=0.1, peak_rate=0.5, period=10)
        assert gen.rate_at(0) == pytest.approx(0.1)
        assert gen.rate_at(5) == pytest.approx(0.5)

    def test_spike_slots_deterministic(self):
        gen = SpikeArrivals(base_rate=0.0, spike_size=2.0, spike_every=5, offset=1)
        trace = gen.sample(3, 11, seed=0)
        spiked = np.flatnonzero(trace.sum(axis=1))
        np.testing.assert_array_equal(spiked, [1, 6])
        assert (trace[spiked] == 2).all()


class TestGoldenTraces:
    """Byte-exact pinning of each family's seeded trace."""

    @pytest.mark.parametrize("family", sorted(ARRIVAL_FAMILIES))
    def test_golden_trace_matches(self, family):
        path = GOLDEN_DIR / f"workload_{family}.json"
        golden = json.loads(path.read_text())
        gen = arrivals_from_spec(golden["spec"])
        trace = gen.sample(
            golden["n_links"], golden["n_slots"], seed=golden["seed"]
        )
        regenerated = json.dumps(
            {
                "spec": spec_of(gen),
                "seed": golden["seed"],
                "n_links": golden["n_links"],
                "n_slots": golden["n_slots"],
                "trace": trace.tolist(),
            },
            indent=2,
            sort_keys=True,
        ) + "\n"
        assert regenerated.encode() == path.read_bytes()

    def test_cross_process_determinism(self):
        """A fresh interpreter reproduces the exact golden bytes.

        Process-boundary determinism is the contract the goldens pin:
        no state of *this* process (import order, RNG pool, hash seed)
        may leak into a trace.
        """
        family = "onoff"
        path = GOLDEN_DIR / f"workload_{family}.json"
        golden = json.loads(path.read_text())
        script = textwrap.dedent(
            f"""
            import json, sys
            from repro.workload.generators import arrivals_from_spec
            golden = json.loads(sys.stdin.read())
            gen = arrivals_from_spec(golden["spec"])
            trace = gen.sample(
                golden["n_links"], golden["n_slots"], seed=golden["seed"]
            )
            print(json.dumps(trace.tolist()))
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=path.read_text(),
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(Path(__file__).parents[1] / "src"), "PYTHONHASHSEED": "random"},
        )
        assert json.loads(out.stdout) == golden["trace"]
