"""Profiling hooks: cProfile/tracemalloc wrappers, independent of obs."""

from __future__ import annotations

from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.obs.profile import (
    ProfileReport,
    profile_call,
    profile_fading_stream,
    profile_run_schedulers,
    profiled,
)


def _work():
    return sum(i * i for i in range(2000))


class TestProfiled:
    def test_cpu_profile_collects_stats(self):
        with profiled() as report:
            _work()
        assert isinstance(report, ProfileReport)
        assert report.wall > 0.0
        assert report.stats is not None
        assert "function calls" in report.top(5)

    def test_memory_profile_tracks_peak(self):
        with profiled(cpu=False, memory=True) as report:
            data = [0] * 50_000
            del data
        assert report.peak_bytes is not None
        assert report.peak_bytes > 50_000 * 8 // 2
        assert report.stats is None

    def test_top_mentions_profiled_function(self):
        with profiled(limit=50) as report:
            _work()
        assert "_work" in report.top(50)


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(_work)
        assert result == _work()
        assert report.wall > 0.0

    def test_passes_arguments(self):
        result, _ = profile_call(sorted, [3, 1, 2])
        assert result == [1, 2, 3]


class TestDomainWrappers:
    def test_profile_run_schedulers(self):
        results, report = profile_run_schedulers(
            {"ldp": get_scheduler("ldp")},
            TopologyWorkload(n_links=20),
            n_repetitions=1,
            n_trials=10,
        )
        assert "ldp" in results
        assert report.wall > 0.0

    def test_profile_fading_stream(self):
        import numpy as np

        n_chunks, report = profile_fading_stream(
            np.full((3, 3), 10.0), np.arange(3), 3.0, 64, seed=0, max_bytes=256
        )
        assert n_chunks > 1  # the byte budget forces chunking
        assert report.peak_bytes is not None


class TestIndependenceFromObsSwitch:
    def test_profiling_works_while_obs_disabled(self):
        from repro import obs

        assert not obs.is_enabled()
        _, report = profile_call(_work)
        assert report.wall > 0.0
