"""Tests for the incremental scheduling engine.

The central contract: after any sequence of deltas, the engine's
maintained distance/interference matrices are **bit-identical** to a
fresh :class:`FadingRLS` built on the replayed link set (pinned by a
Hypothesis property over arbitrary delta sequences), and every repaired
schedule passes the fresh instance's Corollary 3.1 feasibility check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalScheduler
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.delta import LinkDelta, apply_delta
from repro.network.links import LinkSet
from repro.network.mobility import random_waypoint_delta_trace
from repro.network.topology import paper_topology

# -- helpers ---------------------------------------------------------


def _links(n: int, seed: int = 0) -> LinkSet:
    return paper_topology(n, seed=seed)


def _rigid_move(links: LinkSet, idx, offset) -> LinkDelta:
    idx = np.asarray(idx, dtype=np.int64)
    offset = np.asarray(offset, dtype=float)
    return LinkDelta.move(
        idx, links.senders[idx] + offset, links.receivers[idx] + offset
    )


def _assert_state_matches_fresh(engine: IncrementalScheduler, links: LinkSet):
    fresh = FadingRLS(
        links=links,
        alpha=engine.alpha,
        gamma_th=engine.gamma_th,
        eps=engine.eps,
        noise=engine.noise,
        power=engine.power,
    )
    np.testing.assert_array_equal(
        engine.problem.distances(), fresh.distances()
    )
    np.testing.assert_array_equal(
        engine.problem.interference_matrix(), fresh.interference_matrix()
    )


# -- delta application ----------------------------------------------


class TestFMatrixMaintenance:
    def test_moves_keep_f_bit_identical(self):
        links = _links(20)
        engine = IncrementalScheduler(links)
        delta = _rigid_move(links, [3, 7, 11], [[5.0, -2.0]] * 3)
        engine.apply(delta)
        _assert_state_matches_fresh(engine, apply_delta(links, delta))

    def test_removes_keep_f_bit_identical(self):
        links = _links(15)
        engine = IncrementalScheduler(links)
        delta = LinkDelta(removes=np.array([0, 6, 14]))
        engine.apply(delta)
        assert engine.n_links == 12
        _assert_state_matches_fresh(engine, apply_delta(links, delta))

    def test_inserts_keep_f_bit_identical(self):
        links = _links(12)
        extra = _links(4, seed=99)
        engine = IncrementalScheduler(links)
        delta = LinkDelta(inserts=extra)
        engine.apply(delta)
        assert engine.n_links == 16
        _assert_state_matches_fresh(engine, apply_delta(links, delta))

    def test_mixed_delta(self):
        links = _links(18)
        delta = LinkDelta(
            moves=np.array([1, 5]),
            new_senders=links.senders[[1, 5]] + 3.0,
            new_receivers=links.receivers[[1, 5]] + 3.0,
            removes=np.array([0, 17]),
            inserts=_links(3, seed=7),
        )
        engine = IncrementalScheduler(links)
        engine.apply(delta)
        _assert_state_matches_fresh(engine, apply_delta(links, delta))

    def test_zero_length_move_rejected(self):
        links = _links(5)
        engine = IncrementalScheduler(links)
        with pytest.raises(ValueError):
            engine.apply(
                LinkDelta(
                    moves=np.array([0]),
                    new_senders=np.array([[10.0, 10.0]]),
                    new_receivers=np.array([[10.0, 10.0]]),
                )
            )

    def test_out_of_range_delta_rejected(self):
        engine = IncrementalScheduler(_links(5))
        with pytest.raises(IndexError):
            engine.apply(LinkDelta(removes=np.array([9])))
        with pytest.raises(IndexError):
            engine.apply(
                LinkDelta(
                    moves=np.array([9]),
                    new_senders=np.zeros((1, 2)),
                    new_receivers=np.ones((1, 2)),
                )
            )


@st.composite
def delta_sequences(draw):
    """(initial size, [abstract delta specs]) for the property below."""
    n0 = draw(st.integers(6, 14))
    n_deltas = draw(st.integers(1, 4))
    specs = []
    for _ in range(n_deltas):
        specs.append(
            {
                "move_frac": draw(st.floats(0.0, 1.0)),
                "offset": (
                    draw(st.floats(-40.0, 40.0)),
                    draw(st.floats(-40.0, 40.0)),
                ),
                "remove": draw(st.booleans()),
                "insert": draw(st.integers(0, 2)),
                "pick": draw(st.integers(0, 10**6)),
            }
        )
    return n0, specs


def _materialise(links: LinkSet, spec: dict) -> LinkDelta:
    """Turn an abstract spec into a valid delta for the current set."""
    n = len(links)
    rng = np.random.default_rng(spec["pick"])
    k = int(round(spec["move_frac"] * (n - 1)))
    moves = np.sort(rng.choice(n, size=k, replace=False)) if k else None
    removes = None
    if spec["remove"] and n > 4:
        pool = np.setdiff1d(np.arange(n), moves if moves is not None else [])
        if pool.size:
            removes = pool[[int(rng.integers(pool.size))]]
    inserts = _links(spec["insert"], seed=spec["pick"]) if spec["insert"] else None
    offset = np.asarray(spec["offset"], dtype=float)
    return LinkDelta(
        moves=moves,
        new_senders=None if moves is None else links.senders[moves] + offset,
        new_receivers=None if moves is None else links.receivers[moves] + offset,
        removes=removes,
        inserts=inserts,
    )


class TestIncrementalProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(delta_sequences())
    def test_any_delta_sequence_keeps_f_bit_identical(self, case):
        """Property: incremental F == fresh F, bit for bit, always."""
        n0, specs = case
        links = _links(n0, seed=n0)
        engine = IncrementalScheduler(links)
        engine.schedule()
        for spec in specs:
            delta = _materialise(links, spec)
            links = apply_delta(links, delta)
            schedule = engine.step(delta)
            fresh = FadingRLS(links=links)
            np.testing.assert_array_equal(
                engine.problem.interference_matrix(), fresh.interference_matrix()
            )
            assert fresh.is_feasible(schedule.active)


# -- warm-start repair ----------------------------------------------


class TestWarmStartRepair:
    def test_first_schedule_is_full_run(self):
        engine = IncrementalScheduler(_links(20), scheduler="rle")
        s = engine.schedule()
        assert s.diagnostics["mode"] == "full"
        assert s.diagnostics["reason"] == "initial"
        assert s.algorithm == "incremental:rle"
        reference = rle_schedule(FadingRLS(links=_links(20)))
        np.testing.assert_array_equal(np.sort(s.active), np.sort(reference.active))

    def test_empty_delta_repair_keeps_schedule(self):
        engine = IncrementalScheduler(_links(20))
        first = engine.schedule()
        second = engine.step(LinkDelta.empty())
        assert second.diagnostics["mode"] == "repair"
        np.testing.assert_array_equal(np.sort(first.active), np.sort(second.active))

    def test_repair_evicts_newly_infeasible_links(self):
        links = _links(30, seed=3)
        engine = IncrementalScheduler(links)
        first = engine.schedule()
        assert first.active.size >= 2
        # Crowd every scheduled link around the first one: their mutual
        # interference explodes and the repair must evict some of them.
        idx = first.active
        anchor = links.senders[idx[0]]
        offsets = np.linspace(0.0, 2.0, idx.size)[:, None] * np.ones(2)
        delta = LinkDelta.move(
            idx,
            anchor + offsets,
            anchor + offsets + (links.receivers[idx] - links.senders[idx]),
        )
        repaired = engine.step(delta)
        assert repaired.diagnostics["mode"] in ("repair", "full")
        fresh = FadingRLS(links=apply_delta(links, delta))
        assert fresh.is_feasible(repaired.active)
        assert engine.stats["evictions"] > 0

    def test_repair_readmits_links_that_moved_apart(self):
        links = _links(40, seed=5)
        engine = IncrementalScheduler(links)
        engine.schedule()
        inactive = np.flatnonzero(~engine.active_mask)
        assert inactive.size > 0
        # Exile an unscheduled link to empty space: it no longer
        # interferes with anyone and greedy re-admission must take it.
        far = np.array([[5000.0, 5000.0]])
        delta = LinkDelta.move(
            inactive[:1], far, far + (links.receivers[inactive[:1]] - links.senders[inactive[:1]])
        )
        repaired = engine.step(delta)
        assert bool(engine.active_mask[inactive[0]])
        assert repaired.diagnostics["admitted"] >= 1

    def test_quality_fallback_triggers_full_run(self):
        links = _links(25, seed=8)
        # quality_bound=1.0: any repair strictly worse than the
        # reference rate falls back to a from-scratch run.
        engine = IncrementalScheduler(links, quality_bound=1.0)
        engine.schedule()
        idx = np.flatnonzero(engine.active_mask)
        assert idx.size >= 3
        anchor = links.senders[idx[0]]
        offsets = np.linspace(0.0, 1.0, idx.size)[:, None] * np.ones(2)
        delta = LinkDelta.move(
            idx,
            anchor + offsets,
            anchor + offsets + (links.receivers[idx] - links.senders[idx]),
        )
        repaired = engine.step(delta)
        fresh = FadingRLS(links=apply_delta(links, delta))
        assert fresh.is_feasible(repaired.active)
        if repaired.diagnostics["mode"] == "full":
            assert repaired.diagnostics["reason"] == "quality"
            assert engine.stats["fallbacks"] == 1

    def test_ledger_matches_exact_interference(self):
        links = _links(30, seed=2)
        engine = IncrementalScheduler(links)
        engine.schedule()
        for step in range(4):
            rng = np.random.default_rng(step)
            idx = np.sort(rng.choice(engine.n_links, size=6, replace=False))
            offset = rng.uniform(-10.0, 10.0, size=(6, 2))
            delta = LinkDelta.move(
                idx,
                engine.problem.links.senders[idx] + offset,
                engine.problem.links.receivers[idx] + offset,
            )
            engine.step(delta)
            exact = engine.problem.interference_on(engine.active_mask)
            np.testing.assert_allclose(engine.ledger, exact, rtol=0.0, atol=1e-9)

    def test_scheduler_callable_and_kwargs(self):
        calls = []

        def probe(problem, **kwargs):
            calls.append(kwargs)
            return rle_schedule(problem)

        engine = IncrementalScheduler(
            _links(10), scheduler=probe, scheduler_kwargs={"tag": 1}
        )
        s = engine.schedule()
        assert s.algorithm == "incremental:probe"
        assert calls == [{"tag": 1}]

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalScheduler(_links(5), quality_bound=0.0)
        with pytest.raises(ValueError):
            IncrementalScheduler(_links(5), quality_bound=1.5)
        with pytest.raises(ValueError):
            IncrementalScheduler(_links(5), admit_margin=-1e-3)
        with pytest.raises(ValueError):
            IncrementalScheduler(_links(5), alpha=0.0)


# -- golden: warm-start repair over a mobility trace ------------------


class TestMobilityGolden:
    """Pinned end-to-end numbers on one mobility trace.

    These are golden values: they change only if the engine's repair
    policy, the delta trace's RNG stream, or the schedulers change —
    all of which deserve a deliberate diff.
    """

    def _run(self):
        trace = random_waypoint_delta_trace(
            40, 8, speed_range=(2.0, 6.0), move_threshold=12.0, seed=2017
        )
        engine = IncrementalScheduler(trace.initial, scheduler="rle")
        schedules = [engine.schedule()]
        for delta in trace.deltas:
            schedules.append(engine.step(delta))
        return trace, engine, schedules

    def test_golden_trace_stats(self):
        _, engine, schedules = self._run()
        assert engine.stats["applies"] == 7
        assert engine.stats["full_runs"] == 1
        assert engine.stats["repairs"] == 7
        assert engine.stats["fallbacks"] == 0
        assert engine.stats["evictions"] == 1
        assert engine.stats["admissions"] == 11
        sizes = [int(s.active.size) for s in schedules]
        assert sizes == [6, 6, 6, 15, 16, 16, 16, 16]

    def test_golden_schedules_feasible_against_replay(self):
        trace, _, schedules = self._run()
        for links, schedule in zip(trace.linksets(), schedules):
            assert FadingRLS(links=links).is_feasible(schedule.active)

    def test_golden_rates_nondegrading(self):
        trace, engine, schedules = self._run()
        final = FadingRLS(links=engine.problem.links)
        scratch = rle_schedule(final)
        # Warm-start repair must not fall below the engine's own bound
        # relative to a from-scratch run on the final geometry.
        assert final.scheduled_rate(schedules[-1].active) >= (
            engine.quality_bound * final.scheduled_rate(scratch.active)
        )
