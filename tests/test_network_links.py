"""Tests for repro.network.links."""

import numpy as np
import pytest

from repro.network.links import Link, LinkSet


def make_linkset(n=4, spacing=100.0, length=10.0):
    senders = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    receivers = senders + np.array([length, 0.0])
    return LinkSet(senders=senders, receivers=receivers)


class TestLink:
    def test_length(self):
        l = Link(sender=(0.0, 0.0), receiver=(3.0, 4.0))
        assert l.length == pytest.approx(5.0)

    def test_default_rate(self):
        assert Link(sender=(0, 0), receiver=(1, 0)).rate == 1.0


class TestLinkSetConstruction:
    def test_basic(self):
        ls = make_linkset(3)
        assert len(ls) == 3
        np.testing.assert_allclose(ls.lengths, 10.0)

    def test_default_rates(self):
        ls = make_linkset(3)
        np.testing.assert_array_equal(ls.rates, np.ones(3))

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LinkSet(
                senders=[[0, 0]], receivers=[[1, 0]], rates=[0.0]
            )
        with pytest.raises(ValueError):
            LinkSet(senders=[[0, 0]], receivers=[[1, 0]], rates=[-1.0])

    def test_rates_length_mismatch(self):
        with pytest.raises(ValueError):
            LinkSet(senders=[[0, 0]], receivers=[[1, 0]], rates=[1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinkSet(senders=np.zeros((2, 2)), receivers=np.zeros((3, 2)))

    def test_zero_length_link_rejected(self):
        with pytest.raises(ValueError):
            LinkSet(senders=[[1.0, 1.0]], receivers=[[1.0, 1.0]])

    def test_immutability(self):
        ls = make_linkset(2)
        with pytest.raises(ValueError):
            ls.senders[0, 0] = 99.0

    def test_from_links_roundtrip(self):
        links = [Link((0, 0), (1, 0), 2.0), Link((5, 5), (5, 8), 3.0)]
        ls = LinkSet.from_links(links)
        assert len(ls) == 2
        assert ls.link(1).rate == 3.0
        assert ls.link(1).receiver == (5.0, 8.0)

    def test_from_links_empty(self):
        assert len(LinkSet.from_links([])) == 0

    def test_empty(self):
        ls = LinkSet.empty()
        assert len(ls) == 0
        assert ls.has_uniform_rates

    def test_iter(self):
        ls = make_linkset(3)
        assert len(list(ls)) == 3
        assert all(isinstance(l, Link) for l in ls)


class TestUniformRates:
    def test_uniform(self):
        assert make_linkset(3).has_uniform_rates

    def test_non_uniform(self):
        ls = make_linkset(2).with_rates(np.array([1.0, 2.0]))
        assert not ls.has_uniform_rates


class TestGeometry:
    def test_sender_receiver_diagonal_is_length(self):
        ls = make_linkset(4)
        d = ls.sender_receiver_distances()
        np.testing.assert_allclose(np.diag(d), ls.lengths)

    def test_sender_receiver_cross(self):
        ls = make_linkset(2, spacing=100.0, length=10.0)
        d = ls.sender_receiver_distances()
        # d(s_0, r_1) = 110, d(s_1, r_0) = 90.
        assert d[0, 1] == pytest.approx(110.0)
        assert d[1, 0] == pytest.approx(90.0)

    def test_sender_distances_symmetric(self):
        ls = make_linkset(3)
        d = ls.sender_distances()
        np.testing.assert_allclose(d, d.T)

    def test_distance_spread(self):
        ls = make_linkset(2, spacing=100.0, length=10.0)
        # Node set: s0=(0,0), s1=(100,0), r0=(10,0), r1=(110,0).
        # max = 110 (s0..r1), min = 10 (s0..r0 or s1..r1).
        assert ls.distance_spread() == pytest.approx(11.0)


class TestSubsetting:
    def test_subset_order_preserved(self):
        ls = make_linkset(5)
        sub = ls.subset([3, 1])
        np.testing.assert_allclose(sub.senders[:, 0], [300.0, 100.0])

    def test_subset_out_of_range(self):
        with pytest.raises(IndexError):
            make_linkset(3).subset([5])

    def test_mask(self):
        ls = make_linkset(4)
        sub = ls.mask(np.array([True, False, True, False]))
        assert len(sub) == 2

    def test_mask_wrong_length(self):
        with pytest.raises(ValueError):
            make_linkset(3).mask(np.array([True]))

    def test_concat(self):
        a, b = make_linkset(2), make_linkset(3)
        c = a.concat(b)
        assert len(c) == 5

    def test_with_rates(self):
        ls = make_linkset(2).with_rates(np.array([5.0, 6.0]))
        np.testing.assert_array_equal(ls.rates, [5.0, 6.0])

    def test_total_rate(self):
        ls = make_linkset(3).with_rates(np.array([1.0, 2.0, 4.0]))
        assert ls.total_rate() == 7.0
        assert ls.total_rate(np.array([0, 2])) == 5.0
