"""HTTP transport tests: routing, validation codes, error mapping.

Everything runs against a real ``asyncio.start_server`` socket on an
ephemeral port — the same code path ``repro serve`` uses — with a tiny
raw-HTTP client so framing (Content-Length, keep-alive) is exercised,
not mocked.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.service.broker import ScheduleBroker
from repro.service.loadgen import build_topology_payload
from repro.service.server import ScheduleServer, _parse_head


def _problem(n=8, seed=3):
    return FadingRLS(links=paper_topology(n, seed=seed))


async def _request(host, port, method, path, payload=None, *, reader_writer=None,
                   close=False):
    """One raw HTTP exchange; returns (status, parsed body, reader/writer)."""
    if reader_writer is None:
        reader, writer = await asyncio.open_connection(host, port)
    else:
        reader, writer = reader_writer
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{'Connection: close' + chr(13) + chr(10) if close else ''}\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    resp_head = await reader.readuntil(b"\r\n\r\n")
    lines = resp_head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.lower() == "content-length":
            length = int(value)
    resp_body = json.loads(await reader.readexactly(length)) if length else {}
    return status, resp_body, (reader, writer)


def _serve(test_coro_factory, **broker_kwargs):
    """Boot broker+server on an ephemeral port, run the test body, tear down."""

    async def runner():
        broker = ScheduleBroker(inline=True, **broker_kwargs)
        server = ScheduleServer(broker, port=0)
        await broker.start()
        host, port = await server.start()
        try:
            return await test_coro_factory(host, port, broker, server)
        finally:
            await server.close()
            await broker.close(drain=False)

    return asyncio.run(runner())


class TestScheduleEndpoint:
    def test_schedule_matches_direct_run(self):
        problem = _problem()
        direct = get_scheduler("rle")(problem)

        async def body(host, port, broker, server):
            status, resp, rw = await _request(
                host, port, "POST", "/v1/schedule",
                {"topology": build_topology_payload(problem)},
            )
            rw[1].close()
            return status, resp

        status, resp = _serve(body)
        assert status == 200
        assert resp["active"] == [int(i) for i in direct.active]
        assert resp["algorithm"] == direct.algorithm
        assert resp["n_links"] == problem.n_links
        assert resp["tier"] == "miss" and resp["coalesced"] is False
        assert resp["trace_id"].startswith("req-")

    def test_cache_tier_and_keep_alive_reuse(self):
        problem = _problem()

        async def body(host, port, broker, server):
            payload = {"topology": build_topology_payload(problem)}
            _, first, rw = await _request(host, port, "POST", "/v1/schedule", payload)
            # same connection, second request: keep-alive framing works
            _, second, rw = await _request(
                host, port, "POST", "/v1/schedule", payload, reader_writer=rw
            )
            rw[1].close()
            return first, second

        first, second = _serve(body)
        assert first["tier"] == "miss"
        assert second["tier"] == "cache"
        assert second["active"] == first["active"]

    def test_validation_errors_carry_stable_codes(self):
        cases = [
            ({"topology": {"senders": [[0, 0]], "receivers": "bogus"}}, "bad-topology"),
            ({"topology": None}, "bad-topology"),
            ({}, "bad-topology"),
            (
                {
                    "topology": build_topology_payload(_problem(3)),
                    "scheduler": "nope",
                },
                "unknown-scheduler",
            ),
        ]

        async def body(host, port, broker, server):
            out = []
            for payload, _expected in cases:
                status, resp, rw = await _request(
                    host, port, "POST", "/v1/schedule", payload
                )
                rw[1].close()
                out.append((status, resp["error"]["code"]))
            return out

        results = _serve(body)
        for (status, code), (_payload, expected) in zip(results, cases):
            assert status == 400
            assert code == expected

    def test_bad_json_is_400(self):
        async def body(host, port, broker, server):
            reader, writer = await asyncio.open_connection(host, port)
            raw = b"not json"
            writer.write(
                b"POST /v1/schedule HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                + raw
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ")[1])
            writer.close()
            return status

        assert _serve(body) == 400

    def test_rate_limit_maps_to_429(self):
        problem = _problem(5)

        async def body(host, port, broker, server):
            payload = {"topology": build_topology_payload(problem)}
            statuses = []
            for _ in range(3):
                status, resp, rw = await _request(
                    host, port, "POST", "/v1/schedule", payload
                )
                rw[1].close()
                statuses.append((status, resp.get("error", {}).get("code")))
            return statuses

        results = _serve(body, tenant_rate=0.001, tenant_burst=2.0)
        assert [s for s, _ in results] == [200, 200, 429]
        assert results[2][1] == "tenant-rate-exceeded"


class TestSessionsEndpoint:
    def test_open_then_delta(self):
        problem = _problem(10, 7)

        async def body(host, port, broker, server):
            open_status, opened, rw = await _request(
                host, port, "POST", "/v1/sessions/mob-1/delta",
                {"topology": build_topology_payload(problem)},
            )
            delta_status, repaired, rw = await _request(
                host, port, "POST", "/v1/sessions/mob-1/delta",
                {"delta": {"removes": [0, 2]}},
                reader_writer=rw,
            )
            rw[1].close()
            return open_status, opened, delta_status, repaired

        open_status, opened, delta_status, repaired = _serve(body)
        assert open_status == 200 and delta_status == 200
        assert opened["seq"] == 0 and repaired["seq"] == 1
        assert opened["session"] == repaired["session"] == "mob-1"
        from repro.core.incremental import IncrementalScheduler
        from repro.network.delta import LinkDelta

        engine = IncrementalScheduler(problem.links)
        engine.schedule()
        expected = engine.step(LinkDelta(removes=np.array([0, 2])))
        assert repaired["active"] == [int(i) for i in expected.active]
        assert repaired["mode"] == expected.diagnostics.get("mode")

    def test_session_error_statuses(self):
        problem = _problem(5, 2)

        async def body(host, port, broker, server):
            out = {}
            status, resp, rw = await _request(
                host, port, "POST", "/v1/sessions/ghost/delta",
                {"delta": {"removes": [0]}},
            )
            out["unknown"] = (status, resp["error"]["code"])
            topo = {"topology": build_topology_payload(problem)}
            _, _, rw = await _request(
                host, port, "POST", "/v1/sessions/dup/delta", topo, reader_writer=rw
            )
            status, resp, rw = await _request(
                host, port, "POST", "/v1/sessions/dup/delta", topo, reader_writer=rw
            )
            out["exists"] = (status, resp["error"]["code"])
            status, resp, rw = await _request(
                host, port, "POST", "/v1/sessions/x/delta",
                {"topology": build_topology_payload(problem), "delta": {}},
                reader_writer=rw,
            )
            out["both"] = (status, resp["error"]["code"])
            status, resp, rw = await _request(
                host, port, "POST", "/v1/sessions/dup/delta",
                {"delta": {"moves": "zap"}},
                reader_writer=rw,
            )
            out["bad_delta"] = (status, resp["error"]["code"])
            rw[1].close()
            return out

        out = _serve(body)
        assert out["unknown"] == (404, "unknown-session")
        assert out["exists"] == (409, "session-exists")
        assert out["both"] == (400, "bad-session-request")
        assert out["bad_delta"] == (400, "bad-delta")


class TestIntrospectionEndpoints:
    def test_healthz_and_statz(self):
        problem = _problem(6)

        async def body(host, port, broker, server):
            status_h, health, rw = await _request(host, port, "GET", "/v1/healthz")
            await _request(
                host, port, "POST", "/v1/schedule",
                {"topology": build_topology_payload(problem)}, reader_writer=rw,
            )
            status_s, statz, rw = await _request(
                host, port, "GET", "/v1/statz", reader_writer=rw
            )
            rw[1].close()
            return status_h, health, status_s, statz

        status_h, health, status_s, statz = _serve(body)
        assert status_h == 200 and health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert status_s == 200
        assert statz["broker"]["requests"] == 1
        assert statz["broker"]["scheduled"] == 1
        assert statz["broker"]["cache"]["entries"] == 1

    def test_unknown_route_and_method(self):
        async def body(host, port, broker, server):
            s404, r404, rw = await _request(host, port, "GET", "/v1/nope")
            s405, r405, rw = await _request(
                host, port, "GET", "/v1/schedule", reader_writer=rw
            )
            s405b, _, rw = await _request(
                host, port, "POST", "/v1/healthz", {}, reader_writer=rw
            )
            rw[1].close()
            return (s404, r404["error"]["code"]), s405, s405b

        (s404, code), s405, s405b = _serve(body)
        assert (s404, code) == (404, "unknown-route")
        assert s405 == 405 and s405b == 405

    def test_oversized_body_is_413(self):
        async def body(host, port, broker, server):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /v1/schedule HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            writer.close()
            return int(head.split(b" ")[1])

        assert _serve(body) == 413

    def test_connection_close_honoured(self):
        async def body(host, port, broker, server):
            status, _, (reader, writer) = await _request(
                host, port, "GET", "/v1/healthz", close=True
            )
            eof = await reader.read(1)  # server closes after the response
            writer.close()
            return status, eof

        status, eof = _serve(body)
        assert status == 200 and eof == b""

    def test_access_log_lines(self):
        lines = []

        async def runner():
            broker = ScheduleBroker(inline=True)
            server = ScheduleServer(broker, port=0, access_log=lines.append)
            await broker.start()
            host, port = await server.start()
            try:
                _, _, rw = await _request(host, port, "GET", "/v1/healthz")
                rw[1].close()
            finally:
                await server.close()
                await broker.close(drain=False)

        asyncio.run(runner())
        assert len(lines) == 1
        assert lines[0].startswith("GET /v1/healthz 200 ")


class TestHeadParser:
    def test_good_head(self):
        method, path, headers = _parse_head(
            b"POST /v1/schedule?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\n"
        )
        assert method == "POST"
        assert path == "/v1/schedule"
        assert headers == {"host": "h", "content-length": "3"}

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
        ],
    )
    def test_malformed_heads(self, raw):
        assert _parse_head(raw) is None
