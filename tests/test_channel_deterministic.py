"""Tests for repro.channel.deterministic."""

import numpy as np
import pytest

from repro.channel.deterministic import deterministic_sinr, deterministic_success


def two_link_distances(own=10.0, cross=100.0):
    """d[i, j] = d(s_i, r_j): symmetric two-link layout."""
    return np.array([[own, cross], [cross, own]])


class TestDeterministicSinr:
    def test_two_links_value(self):
        d = two_link_distances()
        sinr = deterministic_sinr(d, np.array([0, 1]), alpha=3.0)
        expected = (10.0**-3) / (100.0**-3)
        np.testing.assert_allclose(sinr, expected)

    def test_single_link_infinite(self):
        d = two_link_distances()
        sinr = deterministic_sinr(d, np.array([0]), alpha=3.0)
        assert np.isinf(sinr[0])

    def test_single_link_with_noise(self):
        d = two_link_distances()
        sinr = deterministic_sinr(d, np.array([0]), alpha=3.0, noise=1e-3)
        assert sinr[0] == pytest.approx((10.0**-3) / 1e-3)

    def test_boolean_mask(self):
        d = two_link_distances()
        a = deterministic_sinr(d, np.array([True, True]), alpha=3.0)
        b = deterministic_sinr(d, np.array([0, 1]), alpha=3.0)
        np.testing.assert_allclose(a, b)

    def test_empty_active(self):
        d = two_link_distances()
        assert deterministic_sinr(d, np.zeros(0, dtype=int), alpha=3.0).size == 0

    def test_interference_accumulates(self):
        # Three symmetric links: SINR lower than in the two-link case.
        n = 3
        d = np.full((n, n), 100.0)
        np.fill_diagonal(d, 10.0)
        pair = deterministic_sinr(d[:2, :2], np.array([0, 1]), alpha=3.0)
        triple = deterministic_sinr(d, np.array([0, 1, 2]), alpha=3.0)
        assert triple[0] < pair[0]

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            deterministic_sinr(two_link_distances(), np.array([5]), alpha=3.0)

    def test_bad_mask_shape(self):
        with pytest.raises(ValueError):
            deterministic_sinr(two_link_distances(), np.array([True]), alpha=3.0)


class TestDeterministicSuccess:
    def test_threshold_behaviour(self):
        d = two_link_distances()
        sinr = float(deterministic_sinr(d, np.array([0, 1]), alpha=3.0)[0])
        ok = deterministic_success(d, np.array([0, 1]), alpha=3.0, gamma_th=sinr * 0.99)
        assert ok.all()
        bad = deterministic_success(d, np.array([0, 1]), alpha=3.0, gamma_th=sinr * 1.01)
        assert not bad.any()

    def test_power_cancels(self):
        d = two_link_distances()
        a = deterministic_sinr(d, np.array([0, 1]), alpha=3.0, power=1.0)
        b = deterministic_sinr(d, np.array([0, 1]), alpha=3.0, power=7.0)
        np.testing.assert_allclose(a, b)
