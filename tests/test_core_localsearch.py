"""Tests for local-search schedule improvement."""

import numpy as np
import pytest

from repro.core.base import get_scheduler
from repro.core.ldp import ldp_schedule
from repro.core.localsearch import improve_schedule, local_search_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestImproveSchedule:
    def test_output_feasible(self, paper_problem):
        out = improve_schedule(paper_problem, rle_schedule(paper_problem), seed=0)
        assert paper_problem.is_feasible(out.active)

    @pytest.mark.parametrize("start", ["rle", "ldp", "greedy"])
    def test_never_worse_than_start(self, start, paper_problem):
        initial = get_scheduler(start)(paper_problem)
        out = improve_schedule(paper_problem, initial, seed=0)
        assert paper_problem.scheduled_rate(out.active) >= paper_problem.scheduled_rate(
            initial.active
        )

    def test_strictly_improves_conservative_schedules(self):
        """LDP leaves plenty of budget; local search must find some of it."""
        improved = 0
        for seed in range(4):
            p = FadingRLS(links=paper_topology(200, seed=seed))
            start = ldp_schedule(p)
            out = improve_schedule(p, start, seed=seed)
            if p.scheduled_rate(out.active) > p.scheduled_rate(start.active):
                improved += 1
        assert improved == 4

    def test_add_maximal(self, paper_problem):
        """At the fixed point no single link can be added."""
        out = improve_schedule(paper_problem, rle_schedule(paper_problem), seed=1)
        mask = out.mask(paper_problem.n_links)
        for i in np.flatnonzero(~mask):
            assert not paper_problem.is_feasible(np.append(out.active, i))

    def test_infeasible_start_rejected(self, paper_problem):
        everything = Schedule(active=np.arange(paper_problem.n_links))
        with pytest.raises(ValueError, match="feasible"):
            improve_schedule(paper_problem, everything)

    def test_empty_start_works(self, paper_problem):
        out = improve_schedule(paper_problem, Schedule.empty(), seed=2)
        assert out.size >= 1
        assert paper_problem.is_feasible(out.active)

    def test_matches_optimum_on_small_instances(self):
        """On exactly solvable instances local search lands close to OPT."""
        from repro.core.exact import branch_and_bound_schedule

        gaps = []
        for seed in range(5):
            p = FadingRLS(links=paper_topology(12, region_side=150, seed=seed))
            opt = p.scheduled_rate(branch_and_bound_schedule(p).active)
            ls = p.scheduled_rate(improve_schedule(p, Schedule.empty(), seed=seed).active)
            gaps.append(opt / ls)
        # Tight 12-link instances: local search lands within ~2x of OPT
        # on average (far better than the worst-case RLE gap of 5).
        assert np.mean(gaps) <= 2.0
        assert max(gaps) <= 3.0

    def test_diagnostics(self, paper_problem):
        out = improve_schedule(paper_problem, rle_schedule(paper_problem), seed=0)
        assert out.algorithm == "local_search"
        assert out.diagnostics["start_algorithm"] == "rle"
        assert out.diagnostics["rounds"] >= 1


class TestRegisteredFacade:
    def test_default_start(self, paper_problem):
        out = local_search_schedule(paper_problem, seed=0)
        assert paper_problem.is_feasible(out.active)

    def test_none_start(self, paper_problem):
        out = local_search_schedule(paper_problem, start=None, seed=0)
        assert out.size >= 1

    def test_registered(self):
        assert "local_search" in get_scheduler("local_search").__name__ or True
        assert callable(get_scheduler("local_search"))

    def test_beats_plain_greedy_sometimes(self):
        wins = ties = 0
        for seed in range(4):
            p = FadingRLS(links=paper_topology(200, seed=seed))
            greedy = p.scheduled_rate(get_scheduler("greedy")(p).active)
            ls = p.scheduled_rate(local_search_schedule(p, seed=seed).active)
            assert ls >= greedy
            if ls > greedy:
                wins += 1
            else:
                ties += 1
        assert wins >= 1

    def test_empty_instance(self):
        p = FadingRLS(links=LinkSet.empty())
        assert local_search_schedule(p).size == 0
