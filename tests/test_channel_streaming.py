"""Tests for the streaming (memory-bounded) fading sampler.

Pins the RNG stream-layout contract of :mod:`repro.channel.sampling`:
one exponential stream consumed in C order over ``(T, K, K)`` with the
diagonal interleaved and mean scaling applied after the draw — so
chunking along the trial axis is invisible to the statistics.
"""

import numpy as np
import pytest

from repro.channel.sampling import (
    DEFAULT_MAX_BYTES,
    fading_means,
    instantaneous_sinr,
    iter_fading_trials,
    sample_fading_trials,
    trial_chunk_size,
)
from repro.network.topology import paper_topology


def distances(n=3, own=10.0, cross=60.0):
    d = np.full((n, n), cross)
    np.fill_diagonal(d, own)
    return d


class TestTrialChunkSize:
    def test_default_budget(self):
        assert trial_chunk_size(100, None) == (DEFAULT_MAX_BYTES // 2) // (8 * 100 * 100)

    def test_at_least_one(self):
        # A single K=1000 trial matrix (8 MB) exceeds a 1 MB budget:
        # the sampler still makes progress one trial at a time.
        assert trial_chunk_size(1000, 2**20) == 1

    def test_half_budget_for_draw(self):
        k, budget = 50, 10 * 2**20
        chunk = trial_chunk_size(k, budget)
        assert chunk * 8 * k * k <= budget // 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            trial_chunk_size(10, 0)
        with pytest.raises(ValueError):
            trial_chunk_size(10, -5)


class TestStreamLayout:
    """The RNG stream contract chunking relies on."""

    def test_chunked_concatenation_is_exact(self):
        d = distances(5)
        idx = np.arange(5)
        full = sample_fading_trials(d, idx, 3.0, 23, seed=11)
        for chunk_trials in (1, 2, 7, 23, 100):
            chunks = list(
                iter_fading_trials(d, idx, 3.0, 23, seed=11, chunk_trials=chunk_trials)
            )
            np.testing.assert_array_equal(np.concatenate(chunks), full)

    def test_max_bytes_chunking_is_exact(self):
        d = paper_topology(20, seed=5).sender_receiver_distances()
        idx = np.arange(20)
        full = sample_fading_trials(d, idx, 3.0, 64, seed=3)
        # Budget for ~4 trials per chunk (x2 because half goes to the draw).
        tiny_budget = 4 * 8 * 20 * 20 * 2
        tiny = np.concatenate(
            list(iter_fading_trials(d, idx, 3.0, 64, seed=3, max_bytes=tiny_budget))
        )
        np.testing.assert_array_equal(tiny, full)

    def test_c_order_stream(self):
        """Variates are raw Exp(1) draws in C order, scaled afterwards:
        dividing the sample by the mean matrix recovers exactly the
        generator's flat exponential stream, diagonal interleaved."""
        d = distances(4)
        idx = np.arange(4)
        z = sample_fading_trials(d, idx, 3.0, 6, seed=99)
        _, means = fading_means(d, idx, 3.0)
        raw = np.random.default_rng(99).exponential(1.0, size=6 * 4 * 4)
        np.testing.assert_allclose(
            (z / means[None, :, :]).reshape(-1), raw, rtol=1e-12
        )

    def test_diagonal_comes_from_same_stream(self):
        """Z[t, a, a] are interleaved members of the single stream (not a
        separate draw): their raw variates sit at flat offsets
        t*K*K + a*K + a."""
        k, t = 3, 4
        d = distances(k)
        z = sample_fading_trials(d, np.arange(k), 3.0, t, seed=7)
        _, means = fading_means(d, np.arange(k), 3.0)
        raw = np.random.default_rng(7).exponential(1.0, size=t * k * k)
        for trial in range(t):
            for a in range(k):
                expected = raw[trial * k * k + a * k + a] * means[a, a]
                assert z[trial, a, a] == pytest.approx(expected, rel=1e-12)

    def test_generator_seed_continues_stream(self):
        """Passing one Generator through successive chunks continues the
        stream — the basis for chunked == unchunked equality."""
        d = distances(3)
        idx = np.arange(3)
        rng = np.random.default_rng(42)
        a = sample_fading_trials(d, idx, 3.0, 4, seed=rng)
        b = sample_fading_trials(d, idx, 3.0, 4, seed=rng)
        full = sample_fading_trials(d, idx, 3.0, 8, seed=np.random.default_rng(42))
        np.testing.assert_array_equal(np.concatenate([a, b]), full)


class TestIterFadingTrialsEdges:
    def test_zero_trials(self):
        chunks = list(iter_fading_trials(distances(3), np.arange(2), 3.0, 0, seed=0))
        assert len(chunks) == 1 and chunks[0].shape == (0, 2, 2)

    def test_empty_active(self):
        chunks = list(
            iter_fading_trials(distances(3), np.zeros(0, dtype=int), 3.0, 5, seed=0)
        )
        assert len(chunks) == 1 and chunks[0].shape == (5, 0, 0)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            list(iter_fading_trials(distances(2), np.array([0]), 3.0, -1))

    def test_bad_chunk_trials(self):
        with pytest.raises(ValueError):
            list(iter_fading_trials(distances(2), np.array([0]), 3.0, 4, chunk_trials=0))

    def test_out_of_range_active(self):
        with pytest.raises(IndexError):
            list(iter_fading_trials(distances(2), np.array([7]), 3.0, 1))

    def test_chunk_sinr_matches_full(self):
        d = paper_topology(15, seed=8).sender_receiver_distances()
        idx = np.arange(15)
        full = instantaneous_sinr(sample_fading_trials(d, idx, 3.0, 40, seed=1))
        parts = [
            instantaneous_sinr(z)
            for z in iter_fading_trials(d, idx, 3.0, 40, seed=1, chunk_trials=9)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), full)
