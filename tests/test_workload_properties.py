"""Property-based tests (Hypothesis) for the workload queue dynamics.

The invariants the slotted queue simulator must hold for *every*
instance, arrival process, service policy and seed:

- **packet conservation** — arrived = served + dropped + still queued,
  in total and per link, with non-negative queues throughout;
- **service accounting** — per-slot deliveries never exceed per-slot
  transmission attempts, and nothing is served before it arrives;
- **FIFO ordering** — packets leave a queue in birth order;
- **load monotonicity** — pointwise-larger arrival traces cannot shrink
  the time-summed backlog (probed with deterministic spike trains,
  where scaling is an exact pointwise ordering);
- **execution invariance** — the full queue trajectory is bit-identical
  across compute backends and across ``n_jobs`` 1/2/4 sweep fan-outs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import base as backend_base
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.workload.analyzers import sweep_rates
from repro.workload.generators import (
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    SpikeArrivals,
)
from repro.workload.queues import POLICIES, simulate_workload

# -- strategies ------------------------------------------------------


@st.composite
def problems(draw, min_links=2, max_links=8):
    """Small paper-style instances (zero noise: everything serviceable)."""
    n = draw(st.integers(min_links, max_links))
    seed = draw(st.integers(0, 2_000))
    return FadingRLS(
        links=paper_topology(n, seed=seed), alpha=3.0, gamma_th=1.0, eps=0.05
    )


arrival_processes = st.one_of(
    st.builds(
        PoissonArrivals,
        rate=st.floats(0.01, 0.5, allow_nan=False),
    ),
    st.builds(
        OnOffArrivals,
        rate_on=st.floats(0.1, 0.8, allow_nan=False),
        rate_off=st.floats(0.0, 0.05, allow_nan=False),
        p_on=st.floats(0.05, 0.5, allow_nan=False),
        p_off=st.floats(0.05, 0.5, allow_nan=False),
    ),
    st.builds(
        DiurnalArrivals,
        base_rate=st.floats(0.0, 0.1, allow_nan=False),
        peak_rate=st.floats(0.1, 0.5, allow_nan=False),
        period=st.integers(5, 40),
    ),
    st.builds(
        SpikeArrivals,
        base_rate=st.floats(0.0, 0.05, allow_nan=False),
        spike_size=st.floats(0.5, 3.0, allow_nan=False),
        spike_every=st.integers(2, 20),
    ),
)


# -- conservation and accounting -------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    problem=problems(),
    arrivals=arrival_processes,
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 10_000),
    max_queue=st.one_of(st.none(), st.integers(1, 3)),
)
def test_packet_conservation(problem, arrivals, policy, seed, max_queue):
    """arrived = served + dropped + queued, per link; queues never negative."""
    result = simulate_workload(
        problem,
        arrivals,
        "rle",
        n_slots=40,
        seed=seed,
        policy=policy,
        max_queue=max_queue,
    )
    assert np.all(result.queue_trajectory >= 0)
    final = result.queue_trajectory[-1] if result.n_slots else 0
    np.testing.assert_array_equal(
        result.per_link_arrived,
        result.per_link_served + result.per_link_dropped + final,
    )
    assert result.arrived == result.served + result.dropped + result.final_backlog
    assert result.arrived == int(result.per_link_arrived.sum())
    if max_queue is None:
        assert result.dropped == 0
    else:
        assert np.all(result.queue_trajectory <= max_queue)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    problem=problems(),
    arrivals=arrival_processes,
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 10_000),
)
def test_service_accounting(problem, arrivals, policy, seed):
    """Deliveries per slot never exceed attempts; totals line up."""
    result = simulate_workload(
        problem, arrivals, "rle", n_slots=40, seed=seed, policy=policy
    )
    assert np.all(result.served_per_slot <= result.scheduled_per_slot)
    assert int(result.served_per_slot.sum()) == result.served
    assert result.served + result.failed == int(result.scheduled_per_slot.sum())
    assert result.delays.size == result.served
    if result.delays.size:
        assert int(result.delays.min()) >= 1  # a packet needs >= 1 slot in system


# -- FIFO ordering ---------------------------------------------------


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rate=st.floats(0.2, 2.0, allow_nan=False),
    seed=st.integers(0, 10_000),
    topo_seed=st.integers(0, 2_000),
)
def test_fifo_ordering_single_link(rate, seed, topo_seed):
    """On one link, served packets' birth slots are non-decreasing.

    ``delays`` records deliveries in service order; on a single-link
    instance the reconstruction ``born = served_at - delay + 1`` must be
    monotone — FIFO means no packet overtakes an earlier arrival.
    """
    problem = FadingRLS(
        links=paper_topology(1, seed=topo_seed), alpha=3.0, gamma_th=1.0, eps=0.05
    )
    result = simulate_workload(
        problem, PoissonArrivals(rate), "rle", n_slots=50, seed=seed
    )
    births = []
    k = 0
    for t in range(result.n_slots):
        for _ in range(int(result.served_per_slot[t])):
            births.append(t - int(result.delays[k]) + 1)
            k += 1
    assert births == sorted(births)


# -- load monotonicity -----------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    problem=problems(max_links=6),
    spike=st.integers(1, 2),
    factor=st.integers(2, 4),
    every=st.integers(3, 10),
    seed=st.integers(0, 10_000),
)
def test_backlog_monotone_in_offered_load(problem, spike, factor, every, seed):
    """A pointwise-larger arrival trace cannot shrink the summed backlog.

    Deterministic integer spike trains make ``scaled(factor)`` an exact
    pointwise ordering of the traces (every slot of every link gets
    ``factor`` times the packets), so the cumulative-backlog comparison
    is deterministic — no stochastic coupling caveats.
    """
    base = SpikeArrivals(base_rate=0.0, spike_size=float(spike), spike_every=every)
    low = simulate_workload(problem, base, "rle", n_slots=40, seed=seed)
    high = simulate_workload(
        problem, base.scaled(float(factor)), "rle", n_slots=40, seed=seed
    )
    assert high.arrived == factor * low.arrived
    assert int(high.total_backlog.sum()) >= int(low.total_backlog.sum())


# -- execution invariance --------------------------------------------


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    problem=problems(max_links=6),
    arrivals=arrival_processes,
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 10_000),
)
def test_backend_invariance(problem, arrivals, policy, seed):
    """Queue trajectories are bit-identical across compute backends."""
    trajectories = {}
    for name in backend_base.available_backends():
        with backend_base.use(name):
            result = simulate_workload(
                problem, arrivals, "rle", n_slots=30, seed=seed, policy=policy
            )
        trajectories[name] = result.trajectory_bytes()
    assert len(set(trajectories.values())) == 1, trajectories.keys()


@settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    arrivals=arrival_processes,
    seed=st.integers(0, 10_000),
    topo_seed=st.integers(0, 2_000),
)
def test_njobs_invariance_sweep(arrivals, seed, topo_seed):
    """sweep_rates trajectories are bit-identical for n_jobs 1/2/4."""
    problem = FadingRLS(
        links=paper_topology(5, seed=topo_seed), alpha=3.0, gamma_th=1.0, eps=0.05
    )
    factors = [0.5, 1.0, 2.0, 4.0]
    per_jobs = {}
    for jobs in (1, 2, 4):
        results = sweep_rates(
            problem, arrivals, "rle", factors, n_slots=30, seed=seed, n_jobs=jobs
        )
        per_jobs[jobs] = [r.trajectory_bytes() for r in results]
    assert per_jobs[1] == per_jobs[2] == per_jobs[4]


def test_sharedmem_and_njobs_cross_invariance():
    """One pinned scenario: every backend x n_jobs cell, byte-identical.

    The acceptance criterion's matrix form — the Hypothesis tests above
    sample it; this pins one deterministic cell product in full.
    """
    problem = FadingRLS(
        links=paper_topology(6, seed=11), alpha=3.0, gamma_th=1.0, eps=0.05
    )
    arrivals = OnOffArrivals(rate_on=0.5, p_on=0.2, p_off=0.3)
    reference = None
    for backend in backend_base.available_backends():
        with backend_base.use(backend):
            for jobs in (1, 2, 4):
                results = sweep_rates(
                    problem,
                    arrivals,
                    "rle",
                    [0.5, 1.5, 3.0],
                    n_slots=40,
                    seed=13,
                    n_jobs=jobs,
                )
                blob = b"".join(r.trajectory_bytes() for r in results)
                if reference is None:
                    reference = blob
                assert blob == reference, (backend, jobs)
