"""Tests for the verification harness and structured reports."""

import pytest

from repro.verify import (
    Mismatch,
    all_checks,
    make_scenario,
    resolve_checks,
    run_verification,
    verify_scenario,
)
from repro.verify.report import CheckOutcome, VerificationReport


class TestCheckResolution:
    def test_all_checks_merges_both_registries(self):
        names = set(all_checks())
        assert "exact-vs-ilp" in names  # differential
        assert "eps-monotonicity" in names  # metamorphic
        assert "backend-vs-numpy" in names  # backend bit-identity
        assert "lambda-drain" in names  # queue stability
        assert "channel-vs-rayleigh" in names  # channel laws
        assert "nakagami-unit-closed-form" in names
        assert "cache-vs-fresh" in names  # schedule cache
        assert "service-vs-direct" in names  # serving layer
        assert len(names) == 21

    def test_subset_selection(self):
        selected = resolve_checks(["eps-monotonicity", "cached-vs-certificate"])
        assert set(selected) == {"eps-monotonicity", "cached-vs-certificate"}

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError, match="unknown check"):
            resolve_checks(["nope"])


class TestVerifyScenario:
    def test_runs_selected_checks_in_sorted_order(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        outcomes = verify_scenario(
            scenario, checks=["subset-feasibility", "eps-monotonicity"]
        )
        assert [o.check for o in outcomes] == ["eps-monotonicity", "subset-feasibility"]
        assert all(o.passed for o in outcomes)
        assert all(o.scenario == scenario.name for o in outcomes)

    def test_detects_injected_fault_end_to_end(self):
        scenario = make_scenario("paper", 0, root_seed=0)
        scenario.problem.interference_matrix()[1, 4] += 0.2
        outcomes = verify_scenario(scenario)
        failing = [o for o in outcomes if not o.passed]
        assert failing, "no oracle caught the corrupted cache"
        codes = {m.code for o in failing for m in o.mismatches}
        assert "cache-divergence" in codes


class TestRunVerification:
    def test_budget_is_respected_exactly(self):
        report = run_verification(budget=17, seed=0)
        assert report.n_cells == 17
        assert report.budget == 17

    def test_zero_mismatches_on_seeded_scenarios(self):
        report = run_verification(budget=44, seed=3)
        assert report.passed, report.summary()

    def test_deterministic_given_budget_and_seed(self):
        a = run_verification(budget=22, seed=1)
        b = run_verification(budget=22, seed=1)
        assert [(o.check, o.scenario, o.passed) for o in a.outcomes] == [
            (o.check, o.scenario, o.passed) for o in b.outcomes
        ]

    def test_check_subset(self):
        report = run_verification(budget=6, seed=0, checks=["subset-feasibility"])
        assert {o.check for o in report.outcomes} == {"subset-feasibility"}
        assert report.n_scenarios == 6

    def test_time_budget_stops_early(self):
        report = run_verification(budget=10_000, seed=0, time_budget=0.0)
        assert report.n_cells < 10_000

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="no checks"):
            run_verification(budget=5, checks=[])

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            run_verification(budget=-1)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_verification(budget=15, seed=0)

    def test_to_dict_round_trip(self, report):
        import json

        d = json.loads(json.dumps(report.to_dict()))
        assert d["n_cells"] == 15
        assert d["passed"] is True
        assert set(d["per_check"]) == {o.check for o in report.outcomes}

    def test_summary_mentions_verdict(self, report):
        assert "PASSED: zero mismatches" in report.summary()

    def test_summary_names_failures(self):
        bad = Mismatch(
            check="cached-vs-certificate",
            scenario="paper/n=8/i=0",
            code="cache-divergence",
            message="receiver 7 diverged",
        )
        report = VerificationReport(
            outcomes=(
                CheckOutcome(
                    check="cached-vs-certificate",
                    scenario="paper/n=8/i=0",
                    mismatches=(bad,),
                    wall_seconds=0.0,
                ),
            ),
            budget=1,
            seed=0,
            wall_seconds=0.0,
        )
        assert not report.passed
        text = report.summary()
        assert "cache-divergence" in text
        assert "receiver 7 diverged" in text
        assert "FAILED" in text

    def test_per_check_counts(self, report):
        counts = report.per_check_counts()
        assert sum(row["cells"] for row in counts.values()) == 15
        assert all(row["mismatches"] == 0 for row in counts.values())
