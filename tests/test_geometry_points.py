"""Tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import as_points, bounding_box, points_on_segment, translate


class TestAsPoints:
    def test_passthrough(self):
        p = as_points([[0.0, 1.0], [2.0, 3.0]])
        assert p.shape == (2, 2)
        assert p.dtype == float

    def test_single_point_promoted(self):
        p = as_points([1.0, 2.0])
        assert p.shape == (1, 2)

    def test_empty_ok(self):
        p = as_points(np.zeros((0, 2)))
        assert p.shape == (0, 2)

    def test_wrong_width(self):
        with pytest.raises(ValueError):
            as_points([[1.0, 2.0, 3.0]])

    def test_wrong_single(self):
        with pytest.raises(ValueError):
            as_points([1.0, 2.0, 3.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_points([[np.nan, 0.0]])

    def test_integer_input_coerced(self):
        p = as_points([[1, 2]])
        assert p.dtype == float


class TestBoundingBox:
    def test_basic(self):
        assert bounding_box([[0, 0], [2, 3], [-1, 1]]) == (-1.0, 0.0, 2.0, 3.0)

    def test_single_point(self):
        assert bounding_box([5.0, 7.0]) == (5.0, 7.0, 5.0, 7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box(np.zeros((0, 2)))


class TestTranslate:
    def test_offset_applied(self):
        out = translate([[1.0, 1.0]], [2.0, -1.0])
        np.testing.assert_allclose(out, [[3.0, 0.0]])

    def test_returns_copy(self):
        p = np.array([[0.0, 0.0]])
        out = translate(p, [1.0, 1.0])
        assert out is not p
        np.testing.assert_array_equal(p, [[0.0, 0.0]])

    def test_bad_offset_shape(self):
        with pytest.raises(ValueError):
            translate([[0.0, 0.0]], [1.0])


class TestPointsOnSegment:
    def test_endpoints_included(self):
        pts = points_on_segment([0, 0], [10, 0], 5)
        np.testing.assert_allclose(pts[0], [0, 0])
        np.testing.assert_allclose(pts[-1], [10, 0])

    def test_even_spacing(self):
        pts = points_on_segment([0, 0], [3, 0], 4)
        np.testing.assert_allclose(pts[:, 0], [0, 1, 2, 3])

    def test_min_count(self):
        with pytest.raises(ValueError):
            points_on_segment([0, 0], [1, 1], 1)
