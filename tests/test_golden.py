"""Golden-value regression tests.

A reproduction repository must stay reproducible: these pin exact
outputs for fixed seeds so any accidental behaviour drift — in the
topology generator, the interference math, or the algorithms'
tie-breaking — fails loudly rather than silently shifting every
figure.  If a change is *intentional* (and EXPERIMENTS.md is
regenerated), update the constants here in the same commit.
"""

import numpy as np
import pytest

from repro import FadingRLS, ldp_schedule, paper_topology, rle_schedule
from repro.core.baselines.approx_diversity import approx_diversity_schedule
from repro.core.dls import dls_schedule

GOLDEN_SEED = 0
GOLDEN_N = 100


@pytest.fixture(scope="module")
def golden_problem():
    return FadingRLS(links=paper_topology(GOLDEN_N, seed=GOLDEN_SEED))


class TestWorkloadGolden:
    def test_total_link_length(self, golden_problem):
        assert float(golden_problem.links.lengths.sum()) == pytest.approx(
            1312.3389172481027, rel=1e-12
        )

    def test_interference_matrix_sum(self, golden_problem):
        assert float(golden_problem.interference_matrix().sum()) == pytest.approx(
            66.22138359544928, rel=1e-12
        )


class TestSchedulerGolden:
    def test_rle_exact_output(self, golden_problem):
        s = rle_schedule(golden_problem)
        np.testing.assert_array_equal(
            s.active, [10, 12, 14, 23, 26, 34, 36, 45, 48, 69]
        )

    def test_ldp_exact_output(self, golden_problem):
        s = ldp_schedule(golden_problem)
        np.testing.assert_array_equal(s.active, [7, 14, 22, 23, 27, 51])

    def test_approx_diversity_size(self, golden_problem):
        assert approx_diversity_schedule(golden_problem).size == 42

    def test_dls_exact_output(self, golden_problem):
        s = dls_schedule(golden_problem, seed=0)
        np.testing.assert_array_equal(
            s.active,
            [1, 3, 15, 31, 32, 36, 45, 48, 54, 56, 57, 63, 64, 67, 68, 69, 83, 88, 89, 96],
        )


class TestParallelGolden:
    """Pin the PR-1 contract: ``n_jobs=2`` is bit-identical to serial.

    The work-unit grid runs ``dls`` (the seeded, stateful scheduler —
    the one most likely to drift under parallel execution) and checks
    both exact serial/parallel equality and golden metric values, so
    any future change to seed derivation, unit ordering, or the
    streaming replay fails here by name.
    """

    @pytest.fixture(scope="class")
    def dls_results(self):
        from repro.core.base import get_scheduler
        from repro.experiments.config import TopologyWorkload
        from repro.sim.parallel import build_units, execute_units

        units = build_units(
            {"dls": get_scheduler("dls")},
            TopologyWorkload(n_links=60),
            n_repetitions=2,
            n_trials=200,
            alpha=3.0,
            gamma_th=1.0,
            eps=0.01,
            root_seed=2017,
            scheduler_kwargs={"dls": {"seed": 0}},
        )
        return execute_units(units, n_jobs=1), execute_units(units, n_jobs=2)

    def test_parallel_bit_identical_to_serial(self, dls_results):
        serial, parallel = dls_results
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert s.mean_failed == p.mean_failed
            assert s.mean_throughput == p.mean_throughput
            assert s.n_scheduled == p.n_scheduled
            np.testing.assert_array_equal(s.per_link_success, p.per_link_success)
            np.testing.assert_array_equal(s.active_indices, p.active_indices)

    def test_dls_parallel_golden_values(self, dls_results):
        _, parallel = dls_results
        assert [r.n_scheduled for r in parallel] == [15, 22]
        assert parallel[0].mean_failed == pytest.approx(0.035, abs=0)
        assert parallel[0].mean_throughput == pytest.approx(14.965, abs=0)
        assert parallel[1].mean_failed == pytest.approx(0.05, abs=0)
        assert parallel[1].mean_throughput == pytest.approx(21.95, abs=0)


class TestSimulationGolden:
    def test_monte_carlo_pinned(self, golden_problem):
        from repro.sim.montecarlo import simulate_schedule

        s = rle_schedule(golden_problem)
        r = simulate_schedule(golden_problem, s, n_trials=1000, seed=123)
        # Fading draws are seeded: the exact mean is reproducible.
        assert r.mean_failed == pytest.approx(r.mean_failed)
        second = simulate_schedule(golden_problem, s, n_trials=1000, seed=123)
        assert r.mean_failed == second.mean_failed
        assert r.mean_throughput == second.mean_throughput
