"""Golden-value regression tests.

A reproduction repository must stay reproducible: these pin exact
outputs for fixed seeds so any accidental behaviour drift — in the
topology generator, the interference math, or the algorithms'
tie-breaking — fails loudly rather than silently shifting every
figure.  If a change is *intentional* (and EXPERIMENTS.md is
regenerated), update the constants here in the same commit.
"""

import numpy as np
import pytest

from repro import FadingRLS, ldp_schedule, paper_topology, rle_schedule
from repro.core.baselines.approx_diversity import approx_diversity_schedule
from repro.core.dls import dls_schedule

GOLDEN_SEED = 0
GOLDEN_N = 100


@pytest.fixture(scope="module")
def golden_problem():
    return FadingRLS(links=paper_topology(GOLDEN_N, seed=GOLDEN_SEED))


class TestWorkloadGolden:
    def test_total_link_length(self, golden_problem):
        assert float(golden_problem.links.lengths.sum()) == pytest.approx(
            1312.3389172481027, rel=1e-12
        )

    def test_interference_matrix_sum(self, golden_problem):
        assert float(golden_problem.interference_matrix().sum()) == pytest.approx(
            66.22138359544928, rel=1e-12
        )


class TestSchedulerGolden:
    def test_rle_exact_output(self, golden_problem):
        s = rle_schedule(golden_problem)
        np.testing.assert_array_equal(
            s.active, [10, 12, 14, 23, 26, 34, 36, 45, 48, 69]
        )

    def test_ldp_exact_output(self, golden_problem):
        s = ldp_schedule(golden_problem)
        np.testing.assert_array_equal(s.active, [7, 14, 22, 23, 27, 51])

    def test_approx_diversity_size(self, golden_problem):
        assert approx_diversity_schedule(golden_problem).size == 42

    def test_dls_exact_output(self, golden_problem):
        s = dls_schedule(golden_problem, seed=0)
        np.testing.assert_array_equal(
            s.active,
            [1, 3, 15, 31, 32, 36, 45, 48, 54, 56, 57, 63, 64, 67, 68, 69, 83, 88, 89, 96],
        )


class TestSimulationGolden:
    def test_monte_carlo_pinned(self, golden_problem):
        from repro.sim.montecarlo import simulate_schedule

        s = rle_schedule(golden_problem)
        r = simulate_schedule(golden_problem, s, n_trials=1000, seed=123)
        # Fading draws are seeded: the exact mean is reproducible.
        assert r.mean_failed == pytest.approx(r.mean_failed)
        second = simulate_schedule(golden_problem, s, n_trials=1000, seed=123)
        assert r.mean_failed == second.mean_failed
        assert r.mean_throughput == second.mean_throughput
