"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    CODE_NEGATIVE,
    CODE_NOT_FINITE,
    CODE_NOT_POSITIVE,
    CODE_NOT_PROBABILITY,
    CODE_REQUIREMENT,
    CODE_WRONG_AXIS,
    CODE_WRONG_NDIM,
    ValidationError,
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    require,
)


class TestRequire:
    def test_pass(self):
        require(True, "nope")  # no raise

    def test_fail(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(2.5, "x") == 2.5

    def test_zero_rejected_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_zero_ok_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x", strict=False)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")


class TestCheckProbability:
    def test_interior_ok(self):
        assert check_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("v", [0.0, 1.0])
    def test_endpoints_rejected_open(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p")

    @pytest.mark.parametrize("v", [0.0, 1.0])
    def test_endpoints_ok_closed(self, v):
        assert check_probability(v, "p", open_interval=False) == v

    @pytest.mark.parametrize("v", [-0.1, 1.1])
    def test_outside_rejected(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p", open_interval=False)


class TestCheckFinite:
    def test_finite_ok(self):
        out = check_finite([1.0, 2.0], "a")
        np.testing.assert_array_equal(out, [1.0, 2.0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValueError):
            check_finite([1.0, bad], "a")


class TestStructuredErrorPaths:
    """Every check raises a ValidationError with a stable reason code
    and the offending parameter name — the machine-readable contract
    the verification subsystem and audits rely on."""

    def test_is_valueerror_subclass(self):
        # Callers that catch plain ValueError keep working.
        assert issubclass(ValidationError, ValueError)

    def test_require_code(self):
        with pytest.raises(ValidationError) as exc:
            require(False, "broken")
        assert exc.value.code == CODE_REQUIREMENT
        assert exc.value.param is None

    def test_require_custom_code(self):
        with pytest.raises(ValidationError) as exc:
            require(False, "broken", code="my-code")
        assert exc.value.code == "my-code"

    def test_positive_strict_code(self):
        with pytest.raises(ValidationError) as exc:
            check_positive(0.0, "alpha")
        assert exc.value.code == CODE_NOT_POSITIVE
        assert exc.value.param == "alpha"

    def test_positive_nonstrict_code(self):
        with pytest.raises(ValidationError) as exc:
            check_positive(-1.0, "noise", strict=False)
        assert exc.value.code == CODE_NEGATIVE
        assert exc.value.param == "noise"

    def test_nan_hits_positive_code(self):
        with pytest.raises(ValidationError) as exc:
            check_positive(float("nan"), "gamma_th")
        assert exc.value.code == CODE_NOT_POSITIVE

    @pytest.mark.parametrize("v", [0.0, 1.0, -0.1, 1.1])
    def test_probability_code(self, v):
        with pytest.raises(ValidationError) as exc:
            check_probability(v, "eps")
        assert exc.value.code == CODE_NOT_PROBABILITY
        assert exc.value.param == "eps"

    def test_finite_code(self):
        with pytest.raises(ValidationError) as exc:
            check_finite([1.0, float("inf")], "rates")
        assert exc.value.code == CODE_NOT_FINITE
        assert exc.value.param == "rates"

    def test_shape_ndim_code(self):
        with pytest.raises(ValidationError) as exc:
            check_shape(np.zeros(3), (None, 2), "senders")
        assert exc.value.code == CODE_WRONG_NDIM

    def test_shape_axis_code(self):
        with pytest.raises(ValidationError) as exc:
            check_shape(np.zeros((3, 3)), (None, 2), "senders")
        assert exc.value.code == CODE_WRONG_AXIS

    def test_problem_surfaces_codes(self):
        # End-to-end: FadingRLS construction errors carry codes too.
        from repro.core.problem import FadingRLS
        from repro.network.links import LinkSet

        links = LinkSet(
            senders=np.array([[0.0, 0.0]]), receivers=np.array([[5.0, 0.0]])
        )
        with pytest.raises(ValidationError) as exc:
            FadingRLS(links=links, eps=1.5)
        assert exc.value.code == CODE_NOT_PROBABILITY
        assert exc.value.param == "eps"


class TestCheckShape:
    def test_exact_shape(self):
        a = np.zeros((3, 2))
        assert check_shape(a, (3, 2), "a") is not None

    def test_wildcard(self):
        a = np.zeros((5, 2))
        check_shape(a, (None, 2), "a")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dims"):
            check_shape(np.zeros(3), (None, 2), "a")

    def test_wrong_axis(self):
        with pytest.raises(ValueError, match="axis"):
            check_shape(np.zeros((3, 3)), (None, 2), "a")
