"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    require,
)


class TestRequire:
    def test_pass(self):
        require(True, "nope")  # no raise

    def test_fail(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(2.5, "x") == 2.5

    def test_zero_rejected_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_zero_ok_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x", strict=False)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")


class TestCheckProbability:
    def test_interior_ok(self):
        assert check_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("v", [0.0, 1.0])
    def test_endpoints_rejected_open(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p")

    @pytest.mark.parametrize("v", [0.0, 1.0])
    def test_endpoints_ok_closed(self, v):
        assert check_probability(v, "p", open_interval=False) == v

    @pytest.mark.parametrize("v", [-0.1, 1.1])
    def test_outside_rejected(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p", open_interval=False)


class TestCheckFinite:
    def test_finite_ok(self):
        out = check_finite([1.0, 2.0], "a")
        np.testing.assert_array_equal(out, [1.0, 2.0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValueError):
            check_finite([1.0, bad], "a")


class TestCheckShape:
    def test_exact_shape(self):
        a = np.zeros((3, 2))
        assert check_shape(a, (3, 2), "a") is not None

    def test_wildcard(self):
        a = np.zeros((5, 2))
        check_shape(a, (None, 2), "a")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dims"):
            check_shape(np.zeros(3), (None, 2), "a")

    def test_wrong_axis(self):
        with pytest.raises(ValueError, match="axis"):
            check_shape(np.zeros((3, 3)), (None, 2), "a")
