"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import as_rng, spawn_rngs, stable_seed


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(as_rng(ss), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible_from_same_root(self):
        a1, _ = spawn_rngs(99, 2)
        a2, _ = spawn_rngs(99, 2)
        np.testing.assert_array_equal(a1.random(10), a2.random(10))

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        children = spawn_rngs(g, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, root=0) == stable_seed("a", 1, root=0)

    def test_parts_matter(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_root_matters(self):
        assert stable_seed("a", root=0) != stable_seed("a", root=1)

    def test_range(self):
        s = stable_seed("x", 123456, root=42)
        assert 0 <= s < 2**63

    def test_order_sensitivity(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")


# -- property-based (hypothesis) -------------------------------------

_int_parts = st.tuples(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.integers(min_value=-(2**31), max_value=2**31),
)


class TestStableSeedProperties:
    """SHA-256 derivation: distinct identities must yield distinct seeds.

    The parallel engine keys every work unit's RNG stream off
    ``stable_seed`` — a collision would silently correlate two
    "independent" repetitions, which no statistical test downstream
    would catch.
    """

    @given(st.lists(_int_parts, min_size=2, max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_distinct_part_tuples_collision_free(self, parts_list):
        seeds = [stable_seed(*parts) for parts in parts_list]
        assert len(set(seeds)) == len(seeds)

    @given(_int_parts, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_seed_in_63_bit_range(self, parts, root):
        s = stable_seed(*parts, root=root)
        assert 0 <= s < 2**63

    @given(_int_parts, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_across_calls(self, parts, root):
        assert stable_seed(*parts, root=root) == stable_seed(*parts, root=root)

    @given(
        _int_parts,
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_root_separates_streams(self, parts, root_a, root_b):
        if root_a != root_b:
            assert stable_seed(*parts, root=root_a) != stable_seed(*parts, root=root_b)


class TestSpawnRngsProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_children_pairwise_distinct_streams(self, root, n):
        draws = [tuple(g.integers(0, 2**63, size=4)) for g in spawn_rngs(root, n)]
        assert len(set(draws)) == n

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_spawn_reproducible_and_prefix_stable(self, root, n):
        # Child k's stream depends only on (root, k), not on how many
        # siblings were spawned alongside it.
        first = [g.random(3).tolist() for g in spawn_rngs(root, n)]
        again = [g.random(3).tolist() for g in spawn_rngs(root, n + 2)[:n]]
        assert first == again
