"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs, stable_seed


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(as_rng(ss), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible_from_same_root(self):
        a1, _ = spawn_rngs(99, 2)
        a2, _ = spawn_rngs(99, 2)
        np.testing.assert_array_equal(a1.random(10), a2.random(10))

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        children = spawn_rngs(g, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, root=0) == stable_seed("a", 1, root=0)

    def test_parts_matter(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_root_matters(self):
        assert stable_seed("a", root=0) != stable_seed("a", root=1)

    def test_range(self):
        s = stable_seed("x", 123456, root=42)
        assert 0 <= s < 2**63

    def test_order_sensitivity(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")
