"""Tests for the RLE algorithm (Algorithm 2, Thms 4.3-4.4)."""

import numpy as np
import pytest

from repro.core.base import SchedulerError
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology, random_rates_topology


class TestRleBasics:
    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert rle_schedule(p).size == 0

    def test_single_link(self):
        links = LinkSet(senders=[[0.0, 0.0]], receivers=[[10.0, 0.0]])
        s = rle_schedule(FadingRLS(links=links))
        assert s.size == 1

    def test_always_picks_shortest_link(self, paper_problem):
        s = rle_schedule(paper_problem)
        shortest = int(np.argmin(paper_problem.links.lengths))
        assert shortest in s

    def test_deterministic(self, paper_problem):
        a = rle_schedule(paper_problem)
        b = rle_schedule(paper_problem)
        np.testing.assert_array_equal(a.active, b.active)

    def test_diagnostics(self, paper_problem):
        s = rle_schedule(paper_problem)
        d = s.diagnostics
        assert d["c1"] > 1 and d["c2"] == 0.5
        assert d["removed_by_radius"] + d["removed_by_interference"] + s.size == paper_problem.n_links

    def test_invalid_c2(self, paper_problem):
        for c2 in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                rle_schedule(paper_problem, c2=c2)


class TestUniformRateGuard:
    def test_non_uniform_raises_by_default(self):
        links = random_rates_topology(20, seed=0)
        with pytest.raises(SchedulerError):
            rle_schedule(FadingRLS(links=links))

    def test_non_uniform_allowed_explicitly(self):
        links = random_rates_topology(20, seed=0)
        p = FadingRLS(links=links)
        s = rle_schedule(p, strict_uniform=False)
        assert s.size >= 1
        assert p.is_feasible(s.active)


class TestThm43Feasibility:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_on_paper_workloads(self, seed):
        p = FadingRLS(links=paper_topology(250, seed=seed))
        s = rle_schedule(p)
        assert p.is_feasible(s.active)

    @pytest.mark.parametrize("alpha", [2.5, 3.0, 4.0, 5.0, 6.0])
    def test_feasible_across_alpha(self, alpha):
        p = FadingRLS(links=paper_topology(200, seed=1), alpha=alpha)
        assert p.is_feasible(rle_schedule(p).active)

    @pytest.mark.parametrize("c2", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_feasible_across_c2(self, c2):
        p = FadingRLS(links=paper_topology(200, seed=2))
        assert p.is_feasible(rle_schedule(p, c2=c2).active)

    def test_dense_cluster_feasible(self):
        """Clustered topologies stress the elimination rules hardest."""
        from repro.network.topology import clustered_topology

        p = FadingRLS(links=clustered_topology(200, n_clusters=2, cluster_std=15.0, seed=3))
        assert p.is_feasible(rle_schedule(p).active)


class TestEliminationInvariants:
    def test_lemma41_sender_separation(self):
        """Any two scheduled senders must be far apart: the radius rule
        guarantees later senders are >= c1 * d_ii from r_i, hence
        senders are >= (c1 - 1) * (shorter link length) apart."""
        p = FadingRLS(links=paper_topology(250, seed=4))
        s = rle_schedule(p)
        c1 = s.diagnostics["c1"]
        idx = s.active
        senders = p.links.senders[idx]
        lengths = p.links.lengths[idx]
        from repro.geometry.distance import pairwise_distances

        d = pairwise_distances(senders)
        for a in range(len(idx)):
            for b in range(a + 1, len(idx)):
                shorter = min(lengths[a], lengths[b])
                assert d[a, b] >= (c1 - 1) * shorter - 1e-9

    def test_no_sender_inside_elimination_radius(self):
        p = FadingRLS(links=paper_topology(250, seed=5))
        s = rle_schedule(p)
        c1 = s.diagnostics["c1"]
        dist = p.distances()
        idx = s.active
        lengths = p.links.lengths
        for i in idx:
            for j in idx:
                if i == j:
                    continue
                # Scheduled sender j must be outside c1 * d_ii of r_i
                # whenever link i was picked before j (i shorter).
                if lengths[i] <= lengths[j]:
                    assert dist[j, i] >= c1 * lengths[i] - 1e-9

    def test_interference_budget_split(self):
        """Each scheduled receiver's final interference stays within
        gamma_eps (the c2/(1-c2) split of Thm 4.3)."""
        p = FadingRLS(links=paper_topology(250, seed=6))
        s = rle_schedule(p, c2=0.5)
        inf = p.interference_on(s.active)
        assert (inf[s.active] <= p.gamma_eps + 1e-12).all()


class TestTrace:
    def test_every_link_accounted(self, paper_problem):
        s = rle_schedule(paper_problem, trace=True)
        elim = s.diagnostics["elimination"]
        picked = set(s.active.tolist())
        assert set(elim) | picked == set(range(paper_problem.n_links))
        assert not (set(elim) & picked)

    def test_causes_are_picks(self, paper_problem):
        s = rle_schedule(paper_problem, trace=True)
        picked = set(s.active.tolist())
        for victim, (rule, cause) in s.diagnostics["elimination"].items():
            assert rule in ("radius", "interference")
            assert cause in picked

    def test_radius_cause_geometry(self, paper_problem):
        """A radius-eliminated link's sender really is inside the
        eliminating pick's radius."""
        s = rle_schedule(paper_problem, trace=True)
        c1 = s.diagnostics["c1"]
        dist = paper_problem.distances()
        lengths = paper_problem.links.lengths
        for victim, (rule, cause) in s.diagnostics["elimination"].items():
            if rule == "radius":
                assert dist[victim, cause] < c1 * lengths[cause]

    def test_pick_order_increasing_length(self, paper_problem):
        s = rle_schedule(paper_problem, trace=True)
        order = s.diagnostics["pick_order"]
        lengths = paper_problem.links.lengths[order]
        assert (np.diff(lengths) >= -1e-12).all()

    def test_trace_off_by_default(self, paper_problem):
        s = rle_schedule(paper_problem)
        assert "elimination" not in s.diagnostics

    def test_trace_does_not_change_schedule(self, paper_problem):
        a = rle_schedule(paper_problem)
        b = rle_schedule(paper_problem, trace=True)
        np.testing.assert_array_equal(a.active, b.active)


class TestC2Tradeoff:
    def test_c2_affects_radius(self, paper_problem):
        lo = rle_schedule(paper_problem, c2=0.1)
        hi = rle_schedule(paper_problem, c2=0.9)
        assert lo.diagnostics["c1"] < hi.diagnostics["c1"]


class TestThm44Ratio:
    """Approximation quality against the exact optimum.

    NOTE (reproduction finding, recorded in EXPERIMENTS.md): the literal
    Thm 4.4 constant ``3^alpha * 5 eps / (c2 (1-eps) gamma_th) + 1``
    (~3.73 at the paper's parameters) is *violated* empirically — tight
    12-link instances reach opt/RLE = 5.0.  The theorem's
    eps-dependence is suspect (as eps -> 0 it claims RLE is optimal).
    We pin the honest empirical behaviour with a constant sanity bound
    and xfail the literal claim.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_ratio_bounded_by_small_constant(self, seed):
        from repro.core.exact import branch_and_bound_schedule

        links = paper_topology(12, region_side=150, seed=seed)
        p = FadingRLS(links=links)
        opt = p.scheduled_rate(branch_and_bound_schedule(p).active)
        rle = p.scheduled_rate(rle_schedule(p).active)
        assert rle > 0
        # Constant bound holds empirically with wide margin (max seen: 5).
        assert opt / rle <= 10.0

    @pytest.mark.xfail(
        reason="Thm 4.4's literal constant does not hold empirically; "
        "see EXPERIMENTS.md (reproduction finding)",
        strict=False,
    )
    @pytest.mark.parametrize("seed", range(5))
    def test_paper_literal_bound(self, seed):
        from repro.core.bounds import rle_approximation_ratio
        from repro.core.exact import branch_and_bound_schedule

        links = paper_topology(12, region_side=150, seed=seed)
        p = FadingRLS(links=links)
        opt = p.scheduled_rate(branch_and_bound_schedule(p).active)
        rle = p.scheduled_rate(rle_schedule(p).active)
        bound = rle_approximation_ratio(p.alpha, p.eps, p.gamma_th, 0.5)
        assert opt / rle <= bound + 1e-9
