"""Deterministic unit tests for the slotted queue simulator."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.workload.generators import PoissonArrivals, SpikeArrivals
from repro.workload.queues import POLICIES, simulate_workload


@pytest.fixture()
def problem():
    return FadingRLS(
        links=paper_topology(8, seed=1), alpha=3.0, gamma_th=1.0, eps=0.05
    )


class TestSimulateWorkload:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies_run_and_conserve(self, problem, policy):
        result = simulate_workload(
            problem, PoissonArrivals(0.1), "rle", n_slots=60, seed=7, policy=policy
        )
        assert result.policy == policy
        assert result.arrived == result.served + result.dropped + result.final_backlog
        assert result.queue_trajectory.shape == (60, 8)

    def test_unknown_policy_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown policy"):
            simulate_workload(
                problem, PoissonArrivals(0.1), "rle", n_slots=5, seed=0, policy="psychic"
            )

    def test_negative_slots_rejected(self, problem):
        with pytest.raises(ValueError, match="n_slots"):
            simulate_workload(problem, PoissonArrivals(0.1), "rle", n_slots=-1, seed=0)

    def test_negative_max_queue_rejected(self, problem):
        with pytest.raises(ValueError, match="max_queue"):
            simulate_workload(
                problem, PoissonArrivals(0.1), "rle", n_slots=5, seed=0, max_queue=-1
            )

    def test_zero_slots(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.1), "rle", n_slots=0, seed=0
        )
        assert result.arrived == result.served == result.final_backlog == 0
        assert result.mean_backlog() == 0.0
        assert np.isnan(result.mean_delay)
        assert np.isnan(result.delay_percentile(95))
        assert result.delivery_ratio == 1.0

    def test_same_seed_bit_identical(self, problem):
        a = simulate_workload(problem, PoissonArrivals(0.1), "rle", n_slots=50, seed=3)
        b = simulate_workload(problem, PoissonArrivals(0.1), "rle", n_slots=50, seed=3)
        assert a.trajectory_bytes() == b.trajectory_bytes()
        np.testing.assert_array_equal(a.delays, b.delays)

    def test_different_seeds_differ(self, problem):
        a = simulate_workload(problem, PoissonArrivals(0.3), "rle", n_slots=50, seed=3)
        b = simulate_workload(problem, PoissonArrivals(0.3), "rle", n_slots=50, seed=4)
        assert a.trajectory_bytes() != b.trajectory_bytes()

    def test_max_queue_caps_and_counts_drops(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(2.0), "rle", n_slots=40, seed=3, max_queue=2
        )
        assert result.dropped > 0
        assert np.all(result.queue_trajectory <= 2)
        assert result.arrived == result.served + result.dropped + result.final_backlog

    def test_scheduler_callable_accepted(self, problem):
        from repro.core.rle import rle_schedule

        result = simulate_workload(
            problem, PoissonArrivals(0.1), rle_schedule, n_slots=20, seed=1
        )
        assert result.algorithm == "rle_schedule"

    def test_warmup_validation(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.1), "rle", n_slots=20, seed=1
        )
        with pytest.raises(ValueError, match="warmup"):
            result.mean_backlog(warmup=21)
        assert result.mean_backlog(warmup=20) == 0.0

    def test_multislot_policy_serves_from_cover(self, problem):
        """Under the multislot policy each slot is a subset of one frame slot."""
        from repro.core.multislot import multislot_schedule
        from repro.core.base import get_scheduler

        frame = multislot_schedule(problem, get_scheduler("rle"))
        result = simulate_workload(
            problem,
            PoissonArrivals(0.4),
            "rle",
            n_slots=30,
            seed=5,
            policy="multislot",
        )
        # Attempts per slot bounded by the cycled frame slot's size.
        for t in range(30):
            assert result.scheduled_per_slot[t] <= frame.slot_cycle(t).size

    def test_incremental_matches_backlogged_service_totals(self, problem):
        """Both queue-aware policies drain a light load completely."""
        for policy in ("backlogged", "incremental"):
            result = simulate_workload(
                problem,
                SpikeArrivals(base_rate=0.0, spike_size=1.0, spike_every=10),
                "rle",
                n_slots=60,
                seed=2,
                policy=policy,
            )
            assert result.final_backlog == 0, policy
            assert result.served == result.arrived

    def test_incremental_rejects_per_link_powers(self):
        links = paper_topology(4, seed=0)
        problem = FadingRLS(links=links, powers=np.full(4, 2.0))
        with pytest.raises(ValueError, match="uniform"):
            simulate_workload(
                problem,
                PoissonArrivals(0.2),
                "rle",
                n_slots=5,
                seed=0,
                policy="incremental",
            )

    def test_trajectory_bytes_roundtrip(self, problem):
        result = simulate_workload(
            problem, PoissonArrivals(0.2), "rle", n_slots=25, seed=9
        )
        restored = np.frombuffer(result.trajectory_bytes(), dtype=np.int64).reshape(
            25, 8
        )
        np.testing.assert_array_equal(restored, result.queue_trajectory)
