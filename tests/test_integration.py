"""Cross-module integration tests.

These tie the whole pipeline together: topology -> problem -> scheduler
-> simulator, checking the paper's *claims* rather than any one module's
contract.
"""

import numpy as np
import pytest

from repro import (
    FadingRLS,
    approx_diversity_schedule,
    approx_logn_schedule,
    ldp_schedule,
    paper_topology,
    rle_schedule,
    simulate_schedule,
)


class TestPaperStoryEndToEnd:
    """One mid-size instance; the full Fig. 5/6 narrative must hold."""

    @pytest.fixture(scope="class")
    def setup(self):
        links = paper_topology(300, seed=11)
        problem = FadingRLS(links=links, alpha=3.0, gamma_th=1.0, eps=0.01)
        schedules = {
            "ldp": ldp_schedule(problem),
            "rle": rle_schedule(problem),
            "approx_logn": approx_logn_schedule(problem),
            "approx_diversity": approx_diversity_schedule(problem),
        }
        results = {
            name: simulate_schedule(problem, s, n_trials=2000, seed=i)
            for i, (name, s) in enumerate(schedules.items())
        }
        return problem, schedules, results

    def test_fading_resistant_low_failures(self, setup):
        _, schedules, results = setup
        for name in ("ldp", "rle"):
            r = results[name]
            # Failure probability per link <= eps: tiny mean counts.
            assert r.mean_failed <= 0.01 * schedules[name].size + 0.2

    def test_baselines_substantial_failures(self, setup):
        _, _, results = setup
        assert results["approx_diversity"].mean_failed > 1.0
        assert results["approx_logn"].mean_failed > results["ldp"].mean_failed

    def test_rle_throughput_beats_ldp(self, setup):
        _, _, results = setup
        assert results["rle"].mean_throughput >= results["ldp"].mean_throughput

    def test_per_link_success_meets_eps_contract(self, setup):
        problem, schedules, results = setup
        for name in ("ldp", "rle"):
            # Every scheduled link decodes w.p. >= 1 - eps (allow MC noise).
            assert (results[name].per_link_success >= 1 - problem.eps - 0.02).all()

    def test_failure_rate_ordering(self, setup):
        _, _, results = setup
        assert results["approx_diversity"].failure_rate > results["rle"].failure_rate


class TestAlphaShapeEndToEnd:
    """Fig. 5(b)/6(b) shapes on a single seed."""

    def test_baseline_failures_decrease_with_alpha(self):
        fails = []
        for alpha in (2.5, 4.5):
            links = paper_topology(300, seed=21)
            p = FadingRLS(links=links, alpha=alpha)
            s = approx_diversity_schedule(p)
            r = simulate_schedule(p, s, n_trials=1000, seed=1)
            fails.append(r.failure_rate)
        assert fails[1] < fails[0]

    def test_our_throughput_increases_with_alpha(self):
        tp = []
        for alpha in (2.5, 4.5):
            links = paper_topology(300, seed=22)
            p = FadingRLS(links=links, alpha=alpha)
            r = simulate_schedule(p, rle_schedule(p), n_trials=500, seed=2)
            tp.append(r.mean_throughput)
        assert tp[1] > tp[0]


class TestThroughputScalesWithN:
    def test_rle_monotone_in_n(self):
        tp = []
        for n in (100, 500):
            links = paper_topology(n, seed=23)
            p = FadingRLS(links=links)
            r = simulate_schedule(p, rle_schedule(p), n_trials=300, seed=3)
            tp.append(r.mean_throughput)
        assert tp[1] > tp[0]


class TestAnalyticVsMonteCarlo:
    """The simulator and Theorem 3.1 must tell the same story."""

    def test_expected_throughput_agreement(self):
        links = paper_topology(200, seed=31)
        p = FadingRLS(links=links)
        s = approx_diversity_schedule(p)  # dense, interesting interference
        r = simulate_schedule(p, s, n_trials=30_000, seed=4)
        analytic = p.expected_throughput(s.active)
        assert r.mean_throughput == pytest.approx(analytic, rel=0.02)

    def test_mean_failed_agreement(self):
        links = paper_topology(200, seed=32)
        p = FadingRLS(links=links)
        s = approx_logn_schedule(p)
        r = simulate_schedule(p, s, n_trials=30_000, seed=5)
        probs = p.success_probabilities(s.active)[s.active]
        analytic_failures = float((1 - probs).sum())
        assert r.mean_failed == pytest.approx(analytic_failures, rel=0.05, abs=0.05)


class TestHardnessPipelineEndToEnd:
    def test_knapsack_through_milp(self):
        """Reduction + MILP solver: a different exact path than B&B."""
        from repro.core.exact import milp_schedule
        from repro.core.reduction import (
            KnapsackInstance,
            solve_knapsack_dp,
            solve_knapsack_via_scheduling,
        )

        rng = np.random.default_rng(41)
        inst = KnapsackInstance(
            values=rng.integers(1, 30, 7).astype(float),
            weights=rng.integers(1, 12, 7).astype(float),
            capacity=25.0,
        )
        v_dp, _ = solve_knapsack_dp(inst)
        v_milp, _ = solve_knapsack_via_scheduling(inst, milp_schedule)
        assert v_milp == pytest.approx(v_dp)


class TestMultislotEndToEnd:
    def test_all_links_eventually_served_and_simulated(self):
        from repro.core.multislot import multislot_schedule

        links = paper_topology(80, seed=51)
        p = FadingRLS(links=links)
        ms = multislot_schedule(p, rle_schedule)
        served = 0.0
        for slot in ms.slots:
            r = simulate_schedule(p, slot, n_trials=200, seed=6)
            served += r.mean_throughput
        # Nearly every link's unit rate is delivered across slots.
        assert served >= 0.97 * p.links.rates.sum()
