"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_schedulers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("ldp", "rle", "approx_logn", "protocol"):
            assert name in out


class TestGenerate:
    @pytest.mark.parametrize("ext", ["csv", "json"])
    def test_generate_roundtrip(self, tmp_path, capsys, ext):
        path = tmp_path / f"links.{ext}"
        assert main(["generate", str(path), "--n-links", "40", "--seed", "1"]) == 0
        from repro.io.linksets import linkset_from_csv, linkset_from_json

        loader = linkset_from_csv if ext == "csv" else linkset_from_json
        assert len(loader(path)) == 40

    @pytest.mark.parametrize("topology", ["paper", "clustered", "chain", "exponential"])
    def test_topologies(self, tmp_path, topology):
        path = tmp_path / "links.csv"
        assert main(["generate", str(path), "--topology", topology, "--n-links", "20"]) == 0

    def test_grid_topology_rounds(self, tmp_path):
        path = tmp_path / "links.csv"
        assert main(["generate", str(path), "--topology", "grid", "--n-links", "9"]) == 0
        from repro.io.linksets import linkset_from_csv

        assert len(linkset_from_csv(path)) == 9

    def test_bad_extension(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", str(tmp_path / "links.txt")])


class TestSchedule:
    def test_random_workload(self, capsys):
        assert main(["schedule", "--algorithm", "rle", "--n-links", "60"]) == 0
        out = capsys.readouterr().out
        assert "feasible=True" in out

    def test_from_file_with_output(self, tmp_path, capsys):
        links = tmp_path / "links.csv"
        main(["generate", str(links), "--n-links", "50", "--seed", "2"])
        result = tmp_path / "result.json"
        assert (
            main(
                [
                    "schedule",
                    "--input",
                    str(links),
                    "--algorithm",
                    "greedy",
                    "--trials",
                    "100",
                    "--output",
                    str(result),
                ]
            )
            == 0
        )
        payload = json.loads(result.read_text())
        assert payload["algorithm"] == "greedy"
        assert payload["feasible"] is True
        assert payload["simulation"]["n_trials"] == 100

    def test_noise_flag(self, capsys):
        assert (
            main(["schedule", "--n-links", "40", "--algorithm", "greedy", "--noise", "1e-7"])
            == 0
        )

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            main(["schedule", "--algorithm", "nope", "--n-links", "5"])


class TestConstants:
    def test_prints_table(self, capsys):
        assert main(["constants", "--alpha", "3.0", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "gamma_eps" in out and "c1" in out
        assert len(out.strip().splitlines()) == 4  # header + rule + 2 rows


class TestQueue:
    def test_runs(self, capsys):
        assert (
            main(
                [
                    "queue",
                    "--n-links",
                    "40",
                    "--slots",
                    "50",
                    "--arrival-rate",
                    "0.05",
                    "--algorithm",
                    "greedy",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "slot efficiency" in out

    def test_from_file(self, tmp_path, capsys):
        links = tmp_path / "links.csv"
        main(["generate", str(links), "--n-links", "30", "--seed", "4"])
        assert main(["queue", "--input", str(links), "--slots", "30"]) == 0


class TestVerify:
    def test_small_budget_passes(self, capsys):
        assert main(["verify", "--budget", "8", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "zero mismatches" in out

    def test_list_checks(self, capsys):
        assert main(["verify", "--list-checks"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "cached-vs-certificate" in lines
        assert "eps-monotonicity" in lines
        assert lines == sorted(lines)

    def test_check_subset(self, capsys):
        assert (
            main(
                [
                    "verify",
                    "--budget",
                    "4",
                    "--check",
                    "subset-feasibility",
                    "--check",
                    "cached-vs-certificate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 cells" in out

    def test_output_json(self, tmp_path, capsys):
        path = tmp_path / "verify.json"
        assert main(["verify", "--budget", "6", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert payload["budget"] == 6
        assert payload["n_cells"] == 6
        assert payload["mismatches"] == []

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError, match="unknown check"):
            main(["verify", "--budget", "2", "--check", "nope"])


class TestFigures:
    def test_single_panel_with_json(self, tmp_path, capsys, monkeypatch):
        # Patch the quick config to something tiny for test speed.
        from repro.experiments.config import ExperimentConfig

        tiny = ExperimentConfig(
            n_links_sweep=(20,),
            alpha_sweep=(3.0,),
            n_links_fixed=20,
            n_repetitions=1,
            n_trials=20,
        )
        monkeypatch.setattr(ExperimentConfig, "small", lambda self: tiny)
        out_path = tmp_path / "series.json"
        assert main(["figures", "--panel", "fig6a", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6(a)" in out
        payload = json.loads(out_path.read_text())
        assert "fig6a" in payload


class TestResilienceFlags:
    @pytest.fixture
    def tiny_cfg(self, monkeypatch):
        from repro.experiments.config import ExperimentConfig

        tiny = ExperimentConfig(
            n_links_sweep=(20,),
            alpha_sweep=(3.0,),
            n_links_fixed=20,
            n_repetitions=1,
            n_trials=20,
        )
        monkeypatch.setattr(ExperimentConfig, "small", lambda self: tiny)
        return tiny

    def test_bad_unit_timeout_rejected(self):
        with pytest.raises(SystemExit, match="--unit-timeout"):
            main(["figures", "--panel", "fig5a", "--unit-timeout", "0"])

    def test_bad_max_retries_rejected(self):
        with pytest.raises(SystemExit, match="--max-retries"):
            main(["figures", "--panel", "fig5a", "--max-retries", "-1"])

    def test_resilient_run_matches_plain_run(self, tiny_cfg, tmp_path, capsys):
        out_a = tmp_path / "plain.json"
        out_b = tmp_path / "resilient.json"
        assert main(["figures", "--panel", "fig5a", "--output", str(out_a)]) == 0
        assert (
            main(
                [
                    "figures",
                    "--panel",
                    "fig5a",
                    "--unit-timeout",
                    "30",
                    "--max-retries",
                    "1",
                    "--output",
                    str(out_b),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(out_a.read_text()) == json.loads(out_b.read_text())

    def test_resume_checkpoints_units(self, tiny_cfg, tmp_path, capsys):
        ck_dir = tmp_path / "ck"
        args = ["figures", "--panel", "fig5a", "--resume", str(ck_dir)]
        assert main(args) == 0
        files = sorted(ck_dir.glob("*.json"))
        assert files  # one checkpoint file per work unit
        mtimes = [f.stat().st_mtime_ns for f in files]
        # second run resumes: same panel output, no checkpoint rewritten
        assert main(args) == 0
        capsys.readouterr()
        assert [f.stat().st_mtime_ns for f in sorted(ck_dir.glob("*.json"))] == mtimes

    def test_report_accepts_resilience_flags(self, tiny_cfg, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--max-retries",
                    "1",
                    "--resume",
                    str(tmp_path / "ck"),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert out.read_text().strip()


class TestMobility:
    ARGS = ["mobility", "--n-links", "25", "--steps", "3", "--reps", "1",
            "--speed", "4", "--algorithm", "rle"]

    def test_from_scratch_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "from-scratch" in out
        assert "rle" in out

    def test_incremental_with_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "mobility.json"
        assert main(self.ARGS + ["--incremental", "--move-threshold", "8",
                                 "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incremental" in out
        payload = json.loads(path.read_text())
        assert payload["mode"] == "incremental"
        assert payload["points"][0]["algorithm"] == "rle"
        assert payload["points"][0]["all_feasible"] is True

    def test_default_algorithms(self, capsys):
        assert main(["mobility", "--n-links", "20", "--steps", "2",
                     "--reps", "1", "--speed", "3"]) == 0
        out = capsys.readouterr().out
        assert "ldp" in out and "rle" in out

    def test_bad_move_threshold_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--move-threshold", "-2"])

    def test_bad_quality_bound_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--quality-bound", "1.5"])
