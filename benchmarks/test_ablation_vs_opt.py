"""Ablation A3: approximation quality against the exact optimum.

Small, geographically tight instances where branch-and-bound is exact;
reports the mean and worst empirical opt/alg ratio for LDP and RLE and
compares them to the theoretical guarantees (note: the Thm 4.4 constant
is *not* met empirically — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.exact import branch_and_bound_schedule
from repro.core.problem import FadingRLS
from repro.experiments.ablations import approximation_quality
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology


def test_a3_empirical_ratios(benchmark):
    q = benchmark.pedantic(
        approximation_quality,
        kwargs=dict(n_links=12, n_instances=10),
        rounds=1,
        iterations=1,
    )
    rows = [
        [alg, q.mean_ratio[alg], q.worst_ratio[alg], q.theoretical_bound[alg]]
        for alg in sorted(q.mean_ratio)
    ]
    print()
    print(format_table(["algorithm", "mean opt/alg", "worst opt/alg", "paper bound"], rows))
    # Both are genuine approximations: never below 1, never absurd.
    for alg in q.mean_ratio:
        assert 1.0 - 1e-9 <= q.mean_ratio[alg] <= 20.0
    # LDP's 16 g(L) bound comfortably holds empirically.
    assert q.worst_ratio["ldp"] <= q.theoretical_bound["ldp"]


def test_a3_branch_and_bound_benchmark(benchmark):
    links = paper_topology(16, region_side=150, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    schedule = benchmark(branch_and_bound_schedule, problem)
    assert problem.is_feasible(schedule.active)


def test_a3_milp_benchmark(benchmark):
    from repro.core.exact import milp_schedule

    links = paper_topology(30, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    schedule = benchmark(milp_schedule, problem)
    assert problem.is_feasible(schedule.active, tol=1e-6)
