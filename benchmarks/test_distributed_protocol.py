"""Extended experiment: operational cost of decentralised scheduling.

Times the message-passing DLS protocol and reports its traffic — the
metric a deployment pays that no centralised algorithm shows.
"""

from __future__ import annotations


from repro.core.problem import FadingRLS
from repro.distributed import run_dls_protocol
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology


def _traffic_scaling(sizes=(100, 200, 400), seed=0):
    rows = []
    for n in sizes:
        p = FadingRLS(links=paper_topology(n, seed=seed))
        result = run_dls_protocol(p, seed=seed)
        rows.append(
            [
                n,
                result.schedule.size,
                result.rounds,
                result.total_messages,
                result.mean_neighbors,
            ]
        )
    return rows


def test_protocol_traffic_scaling(benchmark):
    rows = benchmark.pedantic(_traffic_scaling, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["links", "scheduled", "rounds", "messages", "mean neighbours"], rows
        )
    )
    # Per-round traffic is bounded by active x neighbourhood, so total
    # messages grow superlinearly in N (denser neighbourhoods).
    assert rows[-1][3] > rows[0][3]
    # Convergence rounds stay modest regardless of N (geometric decay).
    assert all(r[2] <= 60 for r in rows)


def test_protocol_run_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(200, seed=0))
    p.interference_matrix()
    result = benchmark(run_dls_protocol, p, seed=1)
    assert p.is_feasible(result.schedule.active)
