"""Smoke benchmark: the verification oracle as a timed fuzz run.

``make bench-smoke`` includes this alongside the figure smoke: a
fixed-seed :func:`repro.verify.run_verification` sweep whose wall time
and per-check cell counts land in ``BENCH_RESULTS.json``, so the cost
of the oracle matrix is tracked PR-over-PR just like the figures.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.verify import run_verification

BUDGET = 120
SEED = 0


@pytest.mark.smoke
def test_smoke_verify_fuzz():
    t0 = time.perf_counter()
    report = run_verification(budget=BUDGET, seed=SEED)
    wall = time.perf_counter() - t0

    assert report.passed, report.summary()
    assert report.n_cells == BUDGET

    per_check = report.per_check_counts()
    bench_export.record(
        "verify_fuzz",
        wall,
        {
            "budget": BUDGET,
            "seed": SEED,
            "n_cells": report.n_cells,
            "n_scenarios": report.n_scenarios,
            "checks": {name: row["cells"] for name, row in sorted(per_check.items())},
            "mismatches": sum(row["mismatches"] for row in per_check.values()),
        },
    )
    print(f"\nverify fuzz: {report.n_cells} cells, {report.n_scenarios} scenarios, {wall:.2f}s")
