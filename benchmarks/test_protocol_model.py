"""Extended baseline: the graph (protocol) interference model.

Quantifies Gronkvist & Hansson's point from the paper's related work —
graph-based schedules ignore accumulated interference, so they fail
even harder than the deterministic-SINR baselines under fading.
"""

from __future__ import annotations


from repro.core.baselines.protocol import protocol_model_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule


def _compare(n_links: int = 300, seeds=range(3), n_trials: int = 300):
    rows = []
    for name, fn in (("protocol", protocol_model_schedule), ("rle", rle_schedule)):
        sizes, failed, rates = [], [], []
        for seed in seeds:
            p = FadingRLS(links=paper_topology(n_links, seed=seed))
            s = fn(p)
            r = simulate_schedule(p, s, n_trials=n_trials, seed=seed)
            sizes.append(s.size)
            failed.append(r.mean_failed)
            rates.append(r.failure_rate)
        rows.append(
            [
                name,
                sum(sizes) / len(sizes),
                sum(failed) / len(failed),
                sum(rates) / len(rates),
            ]
        )
    return rows


def test_protocol_vs_rle_failures(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(format_table(["scheduler", "mean scheduled", "mean failed", "failure rate"], rows))
    protocol, rle = rows
    # Graph model schedules aggressively and pays in failures...
    assert protocol[2] > 1.0
    # ...while RLE's failure rate honours the eps contract.
    assert rle[3] <= 0.015


def test_protocol_schedule_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(600, seed=0))
    p.interference_matrix()
    schedule = benchmark(protocol_model_schedule, p)
    assert schedule.size >= 1
