"""Extended experiment A9: mobility's effect on schedule stability.

Faster movement churns the schedule harder (more control traffic in a
real deployment) while per-slot throughput stays roughly flat — the
instance's *statistics* are speed-invariant, only its identity shifts.
"""

from __future__ import annotations

from repro.core.base import get_scheduler
from repro.experiments.mobility_study import mobility_sweep
from repro.experiments.reporting import format_table


def test_a9_mobility_churn(benchmark):
    points = benchmark.pedantic(
        mobility_sweep,
        kwargs=dict(
            schedulers={"rle": get_scheduler("rle")},
            speeds=(1.0, 10.0, 50.0),
            n_links=120,
            n_steps=8,
            n_repetitions=2,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.speed, p.algorithm, p.mean_throughput, p.mean_churn, p.max_churn]
        for p in points
    ]
    print()
    print(
        format_table(
            ["max speed/step", "scheduler", "mean throughput", "mean churn", "max churn"], rows
        )
    )
    assert all(p.all_feasible for p in points)
    by_speed = sorted(points, key=lambda p: p.speed)
    # Churn grows with speed.
    assert by_speed[-1].mean_churn > by_speed[0].mean_churn
    # Throughput statistics stay in a band (speed shuffles, not shrinks).
    tps = [p.mean_throughput for p in points]
    assert max(tps) <= 1.5 * min(tps)
