"""Kernel micro-benchmarks for the compute-backend layer.

Times the three hot kernels behind ``repro.backend`` at paper-grade
sizes and records the results for the regression gate:

- **feasibility** — the O(K^2) gathered verdict kernel vs the legacy
  O(N^2) matvec reduction (``mask @ F``): the tentpole single-core
  speedup target (>= 5x at N=800, K~24);
- **F-build** — the Eq. 17 interference-matrix build, numpy reference
  wall time (plus the numba-vs-numpy ratio when numba is installed);
- **MC chunk** — the allocation-free success reduction vs a naive
  materialising replica of the historical code;
- **submit path** — the serialization probe the executor used to run
  eagerly on every pool submit (now diagnosed lazily, only after a
  pool-surfaced failure): quantifies the removed per-map overhead.

Speedup entries are stamped with the machine's core count; the bench
gate skips cross-machine speedup comparisons (``tools/bench_gate.py``).
"""

from __future__ import annotations

import pickle
import time

import numpy as np

from benchmarks import bench_export
from repro.backend import kernels
from repro.backend.numba_backend import NUMBA_AVAILABLE
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.sim.parallel import build_units
from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload

N_LINKS = 800
K_ACTIVE = 24


def _best_of(fn, repeats=7, inner=20):
    """Best wall time of ``repeats`` batches of ``inner`` calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _problem():
    return FadingRLS(links=paper_topology(N_LINKS, seed=0), alpha=3.0)


def test_feasibility_kernel_speedup():
    p = _problem()
    f = p.interference_matrix()
    budgets = p.effective_budgets()
    rng = np.random.default_rng(1)
    idx = np.sort(rng.choice(N_LINKS, size=K_ACTIVE, replace=False))
    mask = np.zeros(N_LINKS, dtype=bool)
    mask[idx] = True

    def legacy():
        # The historical reduction: a full-width matvec over all N
        # links, then the budget comparison on the active rows.
        load = mask.astype(float) @ f
        return bool(np.all(load[idx] <= budgets[idx] + 1e-12))

    def gathered():
        return kernels.feasible_verdict(f, idx, budgets)

    assert legacy() == gathered()
    legacy_s = _best_of(legacy)
    gathered_s = _best_of(gathered)
    speedup = legacy_s / gathered_s
    bench_export.record(
        "kernel_feasibility",
        gathered_s,
        {
            "n_links": N_LINKS,
            "k_active": K_ACTIVE,
            "legacy_matvec_seconds": legacy_s,
            "speedup_vs_matvec": speedup,
        },
    )
    print(
        f"\nfeasibility: matvec {legacy_s * 1e6:.1f}us, gathered "
        f"{gathered_s * 1e6:.1f}us, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"expected >= 5x over the O(N^2) matvec at N={N_LINKS}, K={K_ACTIVE}; "
        f"got {speedup:.2f}x"
    )


def test_fmatrix_build_wall():
    p = _problem()
    d = p.distances()

    def build():
        kernels.fmatrix(d, p.alpha, p.gamma_th)

    numpy_s = _best_of(build, inner=3)
    config = {"n_links": N_LINKS, "numba_available": NUMBA_AVAILABLE}
    if NUMBA_AVAILABLE:
        from repro.backend import numba_backend

        numba_backend.warmup()
        ref = kernels.fmatrix(d, p.alpha, p.gamma_th)
        got = numba_backend.fmatrix(d, p.alpha, p.gamma_th)
        np.testing.assert_array_equal(got, ref)
        numba_s = _best_of(lambda: numba_backend.fmatrix(d, p.alpha, p.gamma_th), inner=3)
        config["speedup_numba_vs_numpy"] = numpy_s / numba_s
        print(f"\nF-build: numpy {numpy_s * 1e3:.2f}ms, numba {numba_s * 1e3:.2f}ms")
    bench_export.record("kernel_fmatrix_build", numpy_s, config)
    print(f"\nF-build: numpy {numpy_s * 1e3:.2f}ms at N={N_LINKS}")


def test_mc_chunk_kernel():
    rng = np.random.default_rng(3)
    t_c, k = 256, K_ACTIVE
    z = rng.exponential(size=(t_c, k, k))
    gamma_th, noise = 1.0, 0.0
    out = np.empty((t_c, k), dtype=bool)
    scratch = kernels.MCScratch()

    def naive():
        # Historical shape: materialise SINR, then threshold (two fresh
        # (T, K) float allocations per chunk).
        signal = np.diagonal(z, axis1=1, axis2=2)
        denom = z.sum(axis=1) - signal + noise
        with np.errstate(divide="ignore"):
            sinr = np.where(denom > 0, signal / denom, np.inf)
        return sinr >= gamma_th

    def kernel():
        kernels.mc_success_chunk(z, gamma_th, noise, out=out, scratch=scratch)
        return out

    np.testing.assert_array_equal(naive(), kernel())
    naive_s = _best_of(naive)
    kernel_s = _best_of(kernel)
    ratio = naive_s / kernel_s
    bench_export.record(
        "kernel_mc_chunk",
        kernel_s,
        {
            "chunk_trials": t_c,
            "k_active": k,
            "naive_seconds": naive_s,
            "speedup_vs_naive": ratio,
        },
    )
    print(
        f"\nmc chunk: naive {naive_s * 1e6:.1f}us, kernel {kernel_s * 1e6:.1f}us, "
        f"ratio {ratio:.2f}x"
    )
    # The win is allocation removal, not asymptotics — guard against
    # regression rather than demanding a large constant factor.
    assert ratio >= 0.8


def test_submit_path_probe_overhead_removed():
    """The executor no longer pickles every unit eagerly before submit.

    Replicates the removed eager probe (``pickle.dumps`` of the worker
    function and every work unit, per ``parallel_map`` call) and records
    what it cost — pure overhead now paid only after a pool-surfaced
    serialization failure, i.e. never on the happy path.
    """
    from repro.sim import parallel

    # The eager probe is gone from the submit path...
    assert not hasattr(parallel, "_check_picklable")
    # ...and the lazy diagnosis hooks exist in its place.
    assert hasattr(parallel, "_looks_like_pickling_error")
    assert hasattr(parallel, "_raise_pickling_diagnosis")

    units = build_units(
        {"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")},
        TopologyWorkload(n_links=300),
        n_repetitions=16,
        n_trials=500,
        alpha=3.0,
        gamma_th=1.0,
        eps=0.01,
        root_seed=7,
    )

    def eager_probe():
        pickle.dumps(parallel.execute_unit)
        for u in units:
            pickle.dumps(u)

    probe_s = _best_of(eager_probe, inner=5)
    bench_export.record(
        "parallel_submit_probe",
        probe_s,
        {
            "units": len(units),
            "note": "per-map serialization overhead removed from the "
            "submit path (now a lazy post-failure diagnosis)",
        },
    )
    print(
        f"\nsubmit probe: {probe_s * 1e6:.1f}us of per-map serialization "
        f"removed for {len(units)} units"
    )
    assert probe_s > 0.0
