"""Extended experiment: queue-level consequences of fading resistance.

One-shot metrics (Figs. 5-6) count failures per slot; the queue
simulator shows what those failures cost operationally — retransmitted
packets burn slots, so a dense fading-susceptible schedule can deliver
*less* useful traffic per slot than a sparser resistant one.
"""

from __future__ import annotations


from repro.core.baselines.approx_diversity import approx_diversity_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology
from repro.sim.network_sim import simulate_queues


def _run_comparison():
    p = FadingRLS(links=paper_topology(120, seed=0))
    rows = []
    for name, fn in (("rle", rle_schedule), ("approx_diversity", approx_diversity_schedule)):
        r = simulate_queues(p, fn, n_slots=300, arrival_rate=0.05, seed=1)
        rows.append(
            [name, r.deliveries, r.failures, r.slot_efficiency, r.mean_backlog, r.mean_delay]
        )
    return rows


def test_queue_efficiency_comparison(benchmark):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["scheduler", "delivered", "failed attempts", "slot efficiency", "mean backlog", "mean delay"],
            rows,
        )
    )
    rle_row, div_row = rows
    # RLE keeps nearly every transmission attempt useful...
    assert rle_row[3] >= 0.97
    # ...the susceptible baseline wastes attempts on retransmissions.
    assert div_row[2] > rle_row[2]


def test_queue_sim_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(80, seed=0))

    def run():
        return simulate_queues(p, rle_schedule, n_slots=100, arrival_rate=0.05, seed=2)

    result = benchmark(run)
    assert result.arrivals == result.deliveries + result.final_backlog
