"""Service benchmark: 1000 concurrent clients against a live server.

Boots ``repro serve`` as a real subprocess (its own interpreter, its
own event loop — the deployment shape), then drives the deterministic
loadgen at 1000 persistent connections firing synchronized bursts.
Asserts the ISSUE-10 acceptance criteria — peak in-flight >= 1000 and
zero unaccounted request losses — and records the sustained throughput
to ``BENCH_RESULTS.json`` as ``smoke_service`` for
``tools/bench_gate.py`` to regress against.

Runs with the smoke marker so ``make bench-smoke`` / the CI deep run
leave the data point.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from benchmarks import bench_export
from repro.service.loadgen import raise_nofile_limit, run_loadgen

CLIENTS = 1000
TICKS = 2
SEED = 2017
N_LINKS = 12
POOL = 4
ARRIVAL = "spikes"

REPO_ROOT = Path(__file__).resolve().parent.parent


def _spawn_server() -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--quiet"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on http://" in line:
            break
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early (rc={proc.returncode})")
    else:
        proc.kill()
        raise RuntimeError("server never reported its address")
    addr = line.rsplit("http://", 1)[1].strip()
    host, port = addr.rsplit(":", 1)
    return proc, host, int(port)


@pytest.mark.smoke
def test_service_sustains_1000_concurrent_clients():
    raise_nofile_limit()
    proc, host, port = _spawn_server()
    try:
        report = asyncio.run(
            run_loadgen(
                host=host,
                port=port,
                clients=CLIENTS,
                ticks=TICKS,
                arrival=ARRIVAL,
                pool=POOL,
                n_links=N_LINKS,
                seed=SEED,
                timeout=120.0,
            )
        )
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    summary = report.to_dict()
    bench_export.record(
        "smoke_service",
        report.wall_seconds,
        {
            "clients": CLIENTS,
            "ticks": TICKS,
            "arrival": ARRIVAL,
            "pool": POOL,
            "n_links": N_LINKS,
            "seed": SEED,
            "sent": summary["sent"],
            "ok": summary["ok"],
            "throughput_rps": summary["throughput_rps"],
            "p50_ms": summary["p50_ms"],
            "p99_ms": summary["p99_ms"],
            "peak_inflight": summary["peak_inflight"],
        },
    )
    print(
        f"\nservice: {summary['sent']} requests from {CLIENTS} clients in "
        f"{report.wall_seconds:.2f}s ({summary['throughput_rps']:.0f} rps, "
        f"p99 {summary['p99_ms']:.0f}ms, peak in-flight {summary['peak_inflight']})"
    )
    # the ISSUE-10 acceptance criteria
    assert report.peak_inflight >= CLIENTS, (
        f"expected >= {CLIENTS} concurrent in-flight requests, "
        f"got {report.peak_inflight}"
    )
    assert report.unaccounted == 0, f"{report.unaccounted} requests unaccounted for"
    assert report.transport_errors == 0, (
        f"{report.transport_errors} transport-level failures"
    )
    assert report.ok >= CLIENTS  # every client's tick-0 request served
