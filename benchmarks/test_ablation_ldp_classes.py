"""Ablation A1: LDP's one-sided length classes vs [14]'s two-sided.

The paper's claimed improvement: classes bounded only from above give
every class more candidates, so with any rates the winner's rate can
only improve.  Measured on the exponential-length workload where the
diversity g(L) is large enough for the policy to matter.
"""

from __future__ import annotations


from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.experiments.ablations import ldp_class_ablation
from repro.experiments.reporting import format_table
from repro.network.topology import exponential_length_topology


def test_a1_one_sided_never_worse(benchmark):
    out = benchmark.pedantic(
        ldp_class_ablation,
        kwargs=dict(n_links=200, n_repetitions=5, diverse_lengths=True),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, r.means[0], r.stds[0]] for name, r in sorted(out.items())
    ]
    print()
    print(format_table(["variant", "mean_throughput", "std"], rows))
    assert out["one_sided"].means[0] >= out["two_sided"].means[0] - 1e-9


def test_a1_one_sided_benchmark(benchmark):
    links = exponential_length_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    benchmark(ldp_schedule, problem, two_sided=False)


def test_a1_two_sided_benchmark(benchmark):
    links = exponential_length_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    benchmark(ldp_schedule, problem, two_sided=True)
