"""Smoke benchmark: the channel x power grid end-to-end, exported.

``make bench-channels`` (or ``pytest benchmarks -m smoke
benchmarks/test_channel_smoke.py``) drives :func:`power_sweep` over a
reduced law x policy grid with two schedulers and records its wall
time to ``BENCH_RESULTS.json`` as ``smoke_channels``, so every PR
leaves a perf data point for the pluggable-channel replay path
alongside the Rayleigh figure pipeline's.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.experiments.config import ExperimentConfig
from repro.experiments.power_sweep import power_sweep

CHANNELS = ("rayleigh", "nakagami:m=2", "shadowing:sigma_db=6")
POLICIES = ("uniform", "distance_proportional")
SCHEDULERS = ("rle", "greedy")
N_LINKS, N_REPS, N_TRIALS = 16, 2, 200


@pytest.mark.smoke
def test_smoke_channel_power_grid():
    cfg = ExperimentConfig(root_seed=2017)
    t0 = time.perf_counter()
    cells = power_sweep(
        cfg,
        channels=CHANNELS,
        policies=POLICIES,
        schedulers=SCHEDULERS,
        n_links=N_LINKS,
        n_repetitions=N_REPS,
        n_trials=N_TRIALS,
    )
    wall = time.perf_counter() - t0

    assert len(cells) == len(CHANNELS) * len(POLICIES)
    for cell in cells:
        assert set(cell.results) == set(SCHEDULERS)
        for result in cell.results.values():
            assert len(result.per_rep) == N_REPS

    bench_export.record(
        "smoke_channels",
        wall,
        {
            "channels": len(CHANNELS),
            "policies": len(POLICIES),
            "schedulers": len(SCHEDULERS),
            "n_links": N_LINKS,
            "n_repetitions": N_REPS,
            "n_trials": N_TRIALS,
        },
    )
