"""Shared benchmark configuration.

Each figure bench does two things:

1. regenerates the figure's series with a moderate configuration and
   prints it (the "rows the paper reports"), asserting the expected
   qualitative shape;
2. times a representative unit of the pipeline with pytest-benchmark.

``BENCH_CONFIG`` is sized so the full benchmark suite completes in a
few minutes; scale it up via the ``ExperimentConfig`` defaults for a
paper-grade run (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig

BENCH_CONFIG = ExperimentConfig(
    n_links_sweep=(100, 200, 300),
    alpha_sweep=(2.5, 3.0, 3.5, 4.5),
    n_links_fixed=300,
    n_repetitions=3,
    n_trials=200,
    root_seed=2017,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


def print_series(sweep, metric: str, title: str) -> None:
    from repro.experiments.reporting import format_series

    print()
    print(format_series(sweep, metric, title=title))


def pytest_sessionfinish(session, exitstatus):
    """Merge recorded wall times into BENCH_RESULTS.json (if any)."""
    from benchmarks import bench_export

    path = bench_export.flush()
    if path is not None:
        print(f"\nbenchmark export: wrote {path}")
