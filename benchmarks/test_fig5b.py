"""Fig. 5(b): number of failed transmissions vs path loss exponent.

Regenerates the panel's series and times the alpha-dependent part of
the pipeline (interference matrix + baseline schedule + fading replay).
"""

from __future__ import annotations


from benchmarks.conftest import print_series
from repro.core.baselines.approx_diversity import approx_diversity_schedule
from repro.core.problem import FadingRLS
from repro.experiments.fig5 import failed_vs_alpha
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule


def test_fig5b_series_shape(benchmark, bench_config):
    """Regenerate the panel (timed as one benchmark round).  Paper
    shape: baseline failures *decrease* as alpha grows (Formula 17:
    remote interference factors shrink)."""
    fig5b_series = benchmark.pedantic(
        failed_vs_alpha, args=(bench_config,), rounds=1, iterations=1
    )
    print_series(fig5b_series, "mean_failed", "Fig. 5(b): failed transmissions vs alpha")
    for alg in ("ldp", "rle"):
        assert max(fig5b_series.metric(alg, "mean_failed")) <= 1.0
    # Reproduction nuance (EXPERIMENTS.md): the paper's decreasing trend
    # holds for the per-link failure *rate*; the absolute count is
    # hump-shaped because the reconstructed baselines schedule more
    # links at high alpha.  Assert the rate mechanism.
    for alg in ("approx_diversity", "approx_logn"):
        failed = fig5b_series.metric(alg, "mean_failed")
        scheduled = fig5b_series.metric(alg, "mean_scheduled")
        rate = [f / s for f, s in zip(failed, scheduled)]
        assert rate[-1] < rate[0]
    # Baselines still fail substantially at every alpha while ours don't.
    assert min(fig5b_series.metric("approx_diversity", "mean_failed")) > 0.5


def test_fig5b_point_benchmark(benchmark):
    """Time one alpha point at N=300 (fresh problem per alpha: the
    interference matrix must be rebuilt, which is the alpha cost)."""
    links = paper_topology(300, seed=0)

    def point():
        problem = FadingRLS(links=links, alpha=4.0)
        s = approx_diversity_schedule(problem)
        return simulate_schedule(problem, s, n_trials=200, seed=1).mean_failed

    benchmark(point)
