"""Parallel-engine benchmark: fig5a serial vs 4 workers.

Runs the Fig. 5(a) sweep on the bench config twice — ``n_jobs=1`` and
``n_jobs=4`` — asserting the two series are byte-identical, and records
both wall times (plus the speedup) to ``BENCH_RESULTS.json``.  The
>= 2x speedup criterion only applies where 4 workers can actually run
concurrently, so it is asserted on machines with >= 4 usable CPUs and
recorded (not asserted) elsewhere.
"""

from __future__ import annotations

import time
from dataclasses import replace


from benchmarks import bench_export
from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.fig5 import failed_vs_links
from repro.sim.parallel import available_cpus


def _series_payload(sweep):
    return {
        alg: [
            (r.mean_failed, r.mean_throughput, r.failed_std, r.throughput_std)
            for r in results
        ]
        for alg, results in sweep.series.items()
    }


#: Heavier than BENCH_CONFIG on purpose: per-unit work must dwarf the
#: worker-process spawn cost, or the speedup measures pool overhead.
SPEEDUP_CONFIG = replace(
    BENCH_CONFIG, n_links_sweep=(100, 200, 300, 400, 500), n_repetitions=5, n_trials=2000
)


def test_fig5a_parallel_speedup_and_identity():
    serial_cfg = replace(SPEEDUP_CONFIG, n_jobs=1)
    parallel_cfg = replace(SPEEDUP_CONFIG, n_jobs=4)

    t0 = time.perf_counter()
    serial = failed_vs_links(serial_cfg)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = failed_vs_links(parallel_cfg)
    parallel_s = time.perf_counter() - t0

    # Byte-identical series, not merely close (the acceptance criterion).
    assert serial.x_values == pooled.x_values
    assert _series_payload(serial) == _series_payload(pooled)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = available_cpus()
    config = {
        "n_links_sweep": list(SPEEDUP_CONFIG.n_links_sweep),
        "n_repetitions": SPEEDUP_CONFIG.n_repetitions,
        "n_trials": SPEEDUP_CONFIG.n_trials,
        "cpus": cpus,
    }
    bench_export.record(
        "fig5a_serial", serial_s, {**config, "n_jobs": 1}
    )
    bench_export.record(
        "fig5a_jobs4", parallel_s, {**config, "n_jobs": 4, "speedup_vs_serial": speedup}
    )
    print(f"\nfig5a: serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s, "
          f"speedup {speedup:.2f}x on {cpus} CPU(s)")

    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with 4 workers on {cpus} CPUs, got {speedup:.2f}x"
        )
    elif speedup < 1.0:
        # On CPU-starved machines just sanity-check the overhead stays sane.
        assert parallel_s < serial_s * 25, "process-pool overhead exploded"


def test_fig5a_sharedmem_speedup_and_identity():
    """Zero-copy sharedmem fan-out vs the serial numpy path.

    The sharedmem backend materialises each repetition's problem once
    in the parent and ships only segment names, so workers skip both
    the workload regeneration and the O(N^2) matrix builds.  Results
    must stay byte-identical; the >= 4x speedup criterion applies only
    where 4 workers can actually run concurrently (>= 4 usable CPUs) —
    elsewhere the ratio is recorded for the machine-aware bench gate to
    skip (see tools/bench_gate.py).
    """
    serial_cfg = replace(SPEEDUP_CONFIG, n_jobs=1, backend="numpy")
    shm_cfg = replace(SPEEDUP_CONFIG, n_jobs=4, backend="sharedmem")

    t0 = time.perf_counter()
    serial = failed_vs_links(serial_cfg)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    shm = failed_vs_links(shm_cfg)
    shm_s = time.perf_counter() - t0

    assert serial.x_values == shm.x_values
    assert _series_payload(serial) == _series_payload(shm)

    speedup = serial_s / shm_s if shm_s > 0 else float("inf")
    cpus = available_cpus()
    bench_export.record(
        "fig5a_sharedmem_jobs4",
        shm_s,
        {
            "n_links_sweep": list(SPEEDUP_CONFIG.n_links_sweep),
            "n_repetitions": SPEEDUP_CONFIG.n_repetitions,
            "n_trials": SPEEDUP_CONFIG.n_trials,
            "cpus": cpus,
            "n_jobs": 4,
            "backend": "sharedmem",
            "speedup_vs_serial": speedup,
        },
    )
    print(
        f"\nfig5a sharedmem: serial {serial_s:.2f}s, 4 workers {shm_s:.2f}s, "
        f"speedup {speedup:.2f}x on {cpus} CPU(s)"
    )
    if cpus >= 4:
        assert speedup >= 4.0, (
            f"expected >= 4x sharedmem speedup with 4 workers on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
    else:
        # CPU-starved: the zero-copy path must still beat plain 4-worker
        # pooling (it does strictly less work per unit).
        assert shm_s < serial_s * 25, "sharedmem fan-out overhead exploded"
