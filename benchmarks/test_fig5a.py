"""Fig. 5(a): number of failed transmissions vs number of links.

Regenerates the panel's series (printed below the benchmark table) and
times one sweep point of the pipeline: schedule all four algorithms on
a 300-link instance and replay each schedule through the fading channel.
"""

from __future__ import annotations


from benchmarks.conftest import print_series
from repro.core.problem import FadingRLS
from repro.experiments.config import paper_scheduler_set
from repro.experiments.fig5 import failed_vs_links
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule


def test_fig5a_series_shape(benchmark, bench_config):
    """Regenerate the panel (timed as one benchmark round) and check the
    paper shape: LDP/RLE ~0 failures; baselines fail and grow with N."""
    fig5a_series = benchmark.pedantic(
        failed_vs_links, args=(bench_config,), rounds=1, iterations=1
    )
    print_series(fig5a_series, "mean_failed", "Fig. 5(a): failed transmissions vs #links")
    for alg in ("ldp", "rle"):
        assert max(fig5a_series.metric(alg, "mean_failed")) <= 1.0
    div = fig5a_series.metric("approx_diversity", "mean_failed")
    assert div[-1] > div[0]  # grows with N
    assert div[-1] > 1.0  # substantially failing
    logn = fig5a_series.metric("approx_logn", "mean_failed")
    assert max(logn) > max(fig5a_series.metric("ldp", "mean_failed"))


def test_fig5a_point_benchmark(benchmark):
    """Time one sweep point: 4 schedulers + fading replay at N=300."""
    links = paper_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    schedulers = paper_scheduler_set()

    def point():
        out = {}
        for name, fn in schedulers.items():
            s = fn(problem)
            out[name] = simulate_schedule(problem, s, n_trials=200, seed=1).mean_failed
        return out

    result = benchmark(point)
    assert result["rle"] <= 1.0
