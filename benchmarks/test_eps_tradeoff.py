"""Extended experiment A5: the eps reliability/throughput frontier.

The paper fixes eps = 0.01; this sweep shows what that conservatism
costs.  The budget gamma_eps grows ~linearly in eps, so schedules
densify quickly while per-link success only decays like (1 - eps) —
expected *goodput* therefore keeps rising well past eps = 0.01 on the
paper's workload.
"""

from __future__ import annotations


from repro.core.base import get_scheduler
from repro.experiments.reporting import format_table
from repro.experiments.tradeoff import best_eps, eps_tradeoff

EPS_GRID = (0.001, 0.01, 0.05, 0.1, 0.2, 0.4)


def test_a5_eps_frontier(benchmark):
    points = benchmark.pedantic(
        eps_tradeoff,
        kwargs=dict(
            schedulers={"rle": get_scheduler("rle"), "ldp": get_scheduler("ldp")},
            eps_values=EPS_GRID,
            n_links=300,
            n_repetitions=3,
            n_trials=200,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.eps, p.algorithm, p.mean_scheduled, p.mean_expected_goodput, p.mean_failed]
        for p in points
    ]
    print()
    print(
        format_table(
            ["eps", "scheduler", "scheduled", "expected goodput", "failed/slot"], rows
        )
    )
    # Densification: the largest eps schedules strictly more than the smallest.
    for alg in ("rle", "ldp"):
        mine = sorted((p for p in points if p.algorithm == alg), key=lambda p: p.eps)
        assert mine[-1].mean_scheduled > mine[0].mean_scheduled
    # The paper's eps = 0.01 is not the goodput optimum on this workload.
    assert best_eps(points, "rle").eps > 0.01
