"""Extended experiment A8: schedule robustness under log-normal shadowing.

The paper's certification is Rayleigh-only.  Replaying LDP/RLE/baseline
schedules through the composite Suzuki channel (shadowing x Rayleigh)
measures how much of the eps-contract survives a channel the algorithms
were *not* designed for.  Expectation: graceful degradation for the
resistant schedulers (shadowing hits signal and interference
symmetrically), continued heavy failures for the baselines.
"""

from __future__ import annotations


from repro.channel.shadowing import success_probability_shadowed
from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology

SIGMA_GRID = (0.0, 4.0, 8.0)
ALGORITHMS = ("rle", "ldp", "approx_diversity")


def _measure(n_links=300, seed=0, n_trials=20_000):
    p = FadingRLS(links=paper_topology(n_links, seed=seed))
    rows = []
    for alg in ALGORITHMS:
        schedule = get_scheduler(alg)(p)
        for sigma in SIGMA_GRID:
            probs = success_probability_shadowed(
                p.distances(),
                schedule.active,
                p.alpha,
                p.gamma_th,
                sigma_db=sigma,
                n_trials=n_trials,
                seed=hash((alg, sigma)) % 2**31,
            )
            rows.append([alg, sigma, schedule.size, float(probs.mean()), float(probs.min())])
    return rows


def test_a8_shadowing_robustness(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["scheduler", "sigma_dB", "links", "mean success", "worst link success"], rows
        )
    )
    table = {(r[0], r[1]): r for r in rows}
    # Rayleigh baseline point: the eps-contract holds for RLE.
    assert table[("rle", 0.0)][3] >= 0.985
    # Graceful degradation: at 8 dB shadowing RLE's mean success stays high.
    assert table[("rle", 8.0)][3] >= 0.95
    # The susceptible baseline is bad at every sigma.
    for sigma in SIGMA_GRID:
        assert table[("approx_diversity", sigma)][3] < table[("rle", sigma)][3]
