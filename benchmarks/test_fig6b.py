"""Fig. 6(b): throughput vs path loss exponent (LDP vs RLE).

Regenerates the panel's series and times the throughput estimation.
"""

from __future__ import annotations


from benchmarks.conftest import print_series
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.fig6 import throughput_vs_alpha
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule


def test_fig6b_series_shape(benchmark, bench_config):
    """Regenerate the panel (timed as one benchmark round).  Paper
    shape: throughput grows with alpha for both algorithms (smaller
    squares / elimination radii), RLE stays on top."""
    fig6b_series = benchmark.pedantic(
        throughput_vs_alpha, args=(bench_config,), rounds=1, iterations=1
    )
    print_series(fig6b_series, "mean_throughput", "Fig. 6(b): throughput vs alpha")
    for alg in ("ldp", "rle"):
        t = fig6b_series.metric(alg, "mean_throughput")
        assert t[-1] > t[0]
    rle = fig6b_series.metric("rle", "mean_throughput")
    ldp = fig6b_series.metric("ldp", "mean_throughput")
    assert all(r >= l for r, l in zip(rle, ldp))


def test_fig6b_throughput_estimation_benchmark(benchmark):
    """Time schedule + Monte-Carlo throughput at one alpha point."""
    links = paper_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=4.0)
    schedule = rle_schedule(problem)

    def estimate():
        return simulate_schedule(problem, schedule, n_trials=500, seed=2).mean_throughput

    benchmark(estimate)
