"""Smoke benchmark: one traffic scenario end-to-end, exported.

``make bench-traffic`` (or ``pytest benchmarks -m smoke
benchmarks/test_traffic_smoke.py``) drives the whole workload stack —
arrival generation, the slotted queue simulator, the stability-region
bisection — on a small scenario and records its wall time to
``BENCH_RESULTS.json``, so every PR leaves a perf data point for the
traffic path alongside the figure pipeline's.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.workload.generators import PoissonArrivals
from repro.workload.scenario import WorkloadScenario, run_scenario

SCENARIO = WorkloadScenario(
    name="bench-traffic-smoke",
    topology="paper",
    n_links=10,
    arrivals=PoissonArrivals(0.05),
    scheduler="rle",
    policy="backlogged",
    n_slots=150,
    seed=2017,
    stability={
        "factor_lo": 0.5,
        "factor_hi": 64.0,
        "n_grid": 4,
        "max_iter": 4,
        "n_slots": 150,
    },
)


@pytest.mark.smoke
def test_smoke_traffic_end_to_end():
    t0 = time.perf_counter()
    payload = run_scenario(SCENARIO)
    wall = time.perf_counter() - t0

    stats = payload["stats"]
    assert stats["arrived"] == (
        stats["served"] + stats["dropped"] + stats["final_backlog"]
    )
    # A 10-link paper instance under RLE is comfortably stable at
    # lambda = 0.05/link/slot and must diverge well before 64x that.
    stability = payload["stability"]
    assert stability["bracketed"]
    assert 0.05 < stability["lam_star"] < 3.2

    bench_export.record(
        "smoke_traffic",
        wall,
        {
            "n_links": SCENARIO.n_links,
            "n_slots": SCENARIO.n_slots,
            "scheduler": SCENARIO.scheduler,
            "policy": SCENARIO.policy,
            "stability_probes": stability["n_probes"],
        },
    )
    print(f"\nsmoke traffic: {wall:.2f}s (lam* = {stability['lam_star']:.3f})")
