"""Ablation A2: RLE's interference-budget split c2.

c2 trades the two elimination rules against each other: small c2 means
a huge elimination radius (rule 4) but a tight interference cut (rule
5); large c2 the reverse.  The sweep shows where throughput peaks for
the paper's workload.
"""

from __future__ import annotations

from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.ablations import rle_c2_ablation
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology

C2_GRID = (0.1, 0.25, 0.5, 0.75, 0.9)


def test_a2_c2_sweep_shape(benchmark):
    out = benchmark.pedantic(
        rle_c2_ablation,
        kwargs=dict(c2_values=C2_GRID, n_links=200, n_repetitions=5),
        rounds=1,
        iterations=1,
    )
    rows = [[c2, m, s] for c2, m, s in zip(out.x_values, out.means, out.stds)]
    print()
    print(format_table(["c2", "mean_throughput", "std"], rows))
    # Every setting schedules something, and all outputs were feasible
    # by construction (Thm 4.3 holds for any c2 in (0,1)).
    assert all(m >= 1.0 for m in out.means)


def test_a2_rle_c2_benchmark(benchmark):
    links = paper_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    benchmark(rle_schedule, problem, c2=0.25)
