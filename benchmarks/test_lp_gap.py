"""Extended ablation A7: approximation gaps at paper scale via the LP bound.

Exact solvers cap out near N ~ 40; the LP relaxation of Eq. 20-22
bounds the optimum at any size, so we can sandwich every heuristic on
the paper's 300-link workload:

    rate(alg)  <=  OPT  <=  LP bound.
"""

from __future__ import annotations


from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.core.relaxation import lp_upper_bound
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology

ALGORITHMS = ("ldp", "rle", "greedy", "local_search")


def _measure(n_links=300, seeds=range(3)):
    rows = []
    ratios = {a: [] for a in ALGORITHMS}
    bounds = []
    for seed in seeds:
        p = FadingRLS(links=paper_topology(n_links, seed=seed))
        bound = lp_upper_bound(p).upper_bound
        bounds.append(bound)
        for alg in ALGORITHMS:
            fn = get_scheduler(alg)
            kwargs = {"seed": seed} if alg == "local_search" else {}
            rate = p.scheduled_rate(fn(p, **kwargs).active)
            ratios[alg].append(bound / rate if rate else float("inf"))
    for alg in ALGORITHMS:
        vals = ratios[alg]
        rows.append([alg, sum(vals) / len(vals), max(vals)])
    return rows, sum(bounds) / len(bounds)


def test_a7_lp_gap_table(benchmark):
    rows, mean_bound = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(f"mean LP upper bound: {mean_bound:.1f}")
    print(format_table(["algorithm", "mean LP-bound / rate", "worst"], rows))
    by_alg = {r[0]: r for r in rows}
    # Local search closes most of the greedy gap; all gaps are finite.
    assert by_alg["local_search"][1] <= by_alg["ldp"][1]
    assert by_alg["local_search"][1] <= by_alg["rle"][1]
    for r in rows:
        assert r[2] < 50  # big-M LPs are loose, but not absurd


def test_a7_lp_bound_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(300, seed=0))
    p.interference_matrix()
    bound = benchmark(lp_upper_bound, p)
    assert bound.upper_bound > 0


def test_a7_local_search_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(300, seed=0))
    p.interference_matrix()
    fn = get_scheduler("local_search")
    schedule = benchmark(fn, p, seed=0)
    assert p.is_feasible(schedule.active)
