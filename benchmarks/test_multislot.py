"""Extended experiment: multi-slot covering strategies.

The paper's future work — schedule *all* links in minimum slots.
Compares the covering heuristics this library provides and times them.
"""

from __future__ import annotations


from repro.core.ldp import ldp_schedule
from repro.core.multislot import first_fit_multislot, multislot_lower_bound, multislot_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.reporting import format_table
from repro.network.topology import paper_topology


def _compare(n_links=150, seeds=range(3)):
    rows = []
    strategies = {
        "cover_rle": lambda p: multislot_schedule(p, rle_schedule).n_slots,
        "cover_ldp": lambda p: multislot_schedule(p, ldp_schedule).n_slots,
        "first_fit_length": lambda p: first_fit_multislot(p, order="length").n_slots,
        "first_fit_rate": lambda p: first_fit_multislot(p, order="rate").n_slots,
    }
    counts = {name: [] for name in strategies}
    lower = []
    for seed in seeds:
        p = FadingRLS(links=paper_topology(n_links, seed=seed))
        lower.append(multislot_lower_bound(p))
        for name, fn in strategies.items():
            counts[name].append(fn(p))
    for name, values in counts.items():
        rows.append([name, sum(values) / len(values), max(values)])
    rows.append(["(clique lower bound)", sum(lower) / len(lower), max(lower)])
    return rows


def test_multislot_strategy_comparison(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(format_table(["strategy", "mean slots", "max slots"], rows))
    table = {r[0]: r[1] for r in rows}
    # First-fit packs far denser than conservative covering...
    assert table["first_fit_length"] < table["cover_rle"]
    # ...and RLE covering beats LDP covering.
    assert table["cover_rle"] <= table["cover_ldp"]
    # Everything respects the lower bound.
    assert table["(clique lower bound)"] <= table["first_fit_length"]


def test_first_fit_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(200, seed=0))
    p.interference_matrix()
    ms = benchmark(first_fit_multislot, p)
    assert ms.n_slots >= 1


def test_cover_rle_benchmark(benchmark):
    p = FadingRLS(links=paper_topology(200, seed=0))
    p.interference_matrix()
    ms = benchmark(multislot_schedule, p, rle_schedule)
    assert ms.n_slots >= 1
