"""Chaos smoke benchmark: recovery overhead of the resilient executor.

Runs the small Fig. 5(a) sweep twice through the fault-tolerant
executor — once clean, once under a seed-derived fault plan that
crashes/poisons a fixed subset of work units — asserts the recovered
results are identical, and records the overhead ratio to
``BENCH_RESULTS.json`` as ``chaos_smoke``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import failed_vs_links
from repro.faults import FaultPlan, injected
from repro.sim.parallel import build_units, unit_key

pytestmark = [pytest.mark.smoke, pytest.mark.chaos]

FAULT_SEED = 42
FAULT_RATE = 0.3


def _sweep_unit_keys(cfg):
    """The unit keys the fig5a sweep will derive (tag = point index)."""
    keys = []
    for i, n in enumerate(cfg.n_links_sweep):
        from repro.experiments.config import paper_scheduler_set

        units = build_units(
            paper_scheduler_set(),
            cfg.workload(n),
            tag=i,
            n_repetitions=cfg.n_repetitions,
            n_trials=cfg.n_trials,
            alpha=cfg.alpha_default,
            gamma_th=cfg.gamma_th,
            eps=cfg.eps,
            root_seed=0,  # unit_key ignores the seed fields
        )
        keys.extend(unit_key(u) for u in units)
    return keys


@pytest.mark.smoke
def test_smoke_chaos_recovery_overhead():
    cfg = ExperimentConfig().small().with_resilience(unit_timeout=60.0, max_retries=2)

    t0 = time.perf_counter()
    clean = failed_vs_links(cfg)
    clean_wall = time.perf_counter() - t0

    plan = FaultPlan.from_seed(
        FAULT_SEED,
        _sweep_unit_keys(cfg),
        rate=FAULT_RATE,
        kinds=("crash", "poison", "oom"),
    )
    assert not plan.is_empty, "the seeded plan must actually inject something"

    t0 = time.perf_counter()
    with injected(plan):
        chaotic = failed_vs_links(cfg)
    faulted_wall = time.perf_counter() - t0

    # Recovery must be invisible in the results.
    assert chaotic.x_values == clean.x_values
    for alg in clean.series:
        assert chaotic.metric(alg, "mean_failed") == clean.metric(alg, "mean_failed")
        assert chaotic.metric(alg, "mean_throughput") == clean.metric(
            alg, "mean_throughput"
        )

    overhead = faulted_wall / clean_wall if clean_wall > 0 else float("inf")
    bench_export.record(
        "chaos_smoke",
        faulted_wall,
        {
            "clean_wall_seconds": clean_wall,
            "recovery_overhead_ratio": overhead,
            "faulted_units": len(plan),
            "fault_rate": FAULT_RATE,
            "fault_seed": FAULT_SEED,
            "max_retries": cfg.max_retries,
            "unit_timeout": cfg.unit_timeout,
            "n_jobs": cfg.n_jobs,
        },
    )
    print(
        f"\nchaos smoke: clean {clean_wall:.2f}s, faulted {faulted_wall:.2f}s "
        f"({len(plan)} injected faults, overhead x{overhead:.2f})"
    )
