"""Smoke benchmark: one small figure end-to-end, exported.

``make bench-smoke`` (or ``pytest benchmarks -m smoke``) runs this
alone: a sub-minute Fig. 5(a) sweep through the full pipeline —
topology, schedulers, streaming Monte-Carlo replay, aggregation —
recording its wall time to ``BENCH_RESULTS.json`` so every PR leaves a
perf data point even when the full suite doesn't run.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import failed_vs_links


@pytest.mark.smoke
def test_smoke_fig5a_end_to_end():
    cfg = ExperimentConfig().small()
    t0 = time.perf_counter()
    sweep = failed_vs_links(cfg)
    wall = time.perf_counter() - t0

    # The paper's qualitative shape must hold even at smoke scale.
    assert len(sweep.x_values) == len(cfg.n_links_sweep)
    for alg in ("ldp", "rle"):
        assert max(sweep.metric(alg, "mean_failed")) <= 1.0

    bench_export.record(
        "smoke_fig5a",
        wall,
        {
            "n_links_sweep": list(cfg.n_links_sweep),
            "n_repetitions": cfg.n_repetitions,
            "n_trials": cfg.n_trials,
            "n_jobs": cfg.n_jobs,
        },
    )
    print(f"\nsmoke fig5a: {wall:.2f}s")
