"""Extended experiment A6: when does the paper's N0 = 0 stop being safe?

Sweeps ambient noise through the critical level where long links die
and checks the phase structure plus the resistant schedulers' eps-floor
failure behaviour under noise-aware budgets.
"""

from __future__ import annotations

from repro.core.base import get_scheduler
from repro.experiments.noise_study import noise_sweep
from repro.experiments.reporting import format_table


def test_a6_noise_phases(benchmark):
    points = benchmark.pedantic(
        noise_sweep,
        kwargs=dict(
            schedulers={"rle": get_scheduler("rle"), "greedy": get_scheduler("greedy")},
            n_links=200,
            n_repetitions=3,
            n_trials=200,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.noise, p.algorithm, p.mean_serviceable, p.mean_scheduled, p.mean_goodput, p.mean_failed]
        for p in points
    ]
    print()
    print(
        format_table(
            ["noise N0", "scheduler", "serviceable", "scheduled", "goodput", "failed/slot"],
            rows,
            float_fmt="{:.4g}",
        )
    )
    by_alg = lambda a: sorted((p for p in points if p.algorithm == a), key=lambda p: p.noise)  # noqa: E731
    for alg in ("rle", "greedy"):
        pts = by_alg(alg)
        # Phase 1: zero noise == all serviceable.
        assert pts[0].mean_serviceable == 200
        # Phase 2: above critical, some links are dead.
        assert pts[-1].mean_serviceable < 200
        # The eps contract survives noise (noise-aware budgets).
        for p in pts:
            assert p.mean_failed <= 0.01 * max(p.mean_scheduled, 1) + 0.3


