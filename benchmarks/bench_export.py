"""Machine-readable benchmark export.

Benchmarks record named wall-time measurements here; at session end the
collected entries are merged into ``BENCH_RESULTS.json`` at the repo
root (merge, not overwrite, so a smoke run doesn't wipe the full
suite's history).  Future PRs diff this file to track the perf
trajectory.

Schema::

    {
      "schema": 1,
      "generated_unix": <float>,
      "machine": {"cpus": int, "python": str, "numpy": str},
      "results": {
         "<name>": {"wall_seconds": float, "recorded_unix": float,
                    "machine_cpus": int, "config": {...}},
         ...
      }
    }

``machine_cpus`` is stamped per result at record time (the top-level
``machine`` block describes only the *last* session that wrote the
file, and results merge across sessions).  ``tools/bench_gate.py``
skips speedup comparisons when a result's core count differs from the
baseline's — a 4-core speedup target is meaningless on a 1-core
runner.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_RESULTS.json"
SCHEMA_VERSION = 1

_pending: Dict[str, Dict[str, Any]] = {}


def machine_info() -> Dict[str, Any]:
    """CPU/interpreter facts that contextualise a wall-time number."""
    import numpy as np

    from repro.sim.parallel import available_cpus

    return {
        "cpus": available_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def record(name: str, wall_seconds: float, config: Optional[Dict[str, Any]] = None) -> None:
    """Queue one benchmark measurement for export at session end.

    Each entry is stamped with the recording machine's core count so
    the regression gate can refuse to compare speedups across machines
    with different parallel capacity.
    """
    from repro.sim.parallel import available_cpus

    _pending[name] = {
        "wall_seconds": float(wall_seconds),
        "recorded_unix": time.time(),
        "machine_cpus": available_cpus(),
        "config": dict(config or {}),
    }


def pending() -> Dict[str, Dict[str, Any]]:
    """The measurements queued so far (read-only view for tests)."""
    return dict(_pending)


def flush(path: Path | None = None) -> Optional[Path]:
    """Merge queued measurements into the results file.

    Returns the written path, or ``None`` when nothing was recorded
    (so non-benchmark pytest sessions never touch the file).
    """
    if not _pending:
        return None
    target = RESULTS_PATH if path is None else Path(path)
    existing: Dict[str, Any] = {}
    if target.exists():
        try:
            existing = json.loads(target.read_text())
        except (json.JSONDecodeError, OSError):
            existing = {}
    results = dict(existing.get("results", {}))
    results.update(_pending)
    payload = {
        "schema": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "machine": machine_info(),
        "results": dict(sorted(results.items())),
    }
    target.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    _pending.clear()
    return target
