"""Incremental-engine benchmark: warm-start repair vs full recompute.

Drives a 300-link random-waypoint delta trace through both dynamic
pipelines — :class:`~repro.core.incremental.IncrementalScheduler`
(O(kN) matrix maintenance + ledger repair) and the from-scratch loop
(fresh ``FadingRLS`` + scheduler every step) — asserting the schedules
stay feasible and the incremental path is at least 5x faster, and
records both wall times (plus the speedup) to ``BENCH_RESULTS.json``.

Runs with the smoke marker so every CI deep run leaves a data point for
``tools/bench_gate.py`` to regress against.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks import bench_export
from repro.core.base import get_scheduler
from repro.core.incremental import IncrementalScheduler
from repro.core.problem import FadingRLS
from repro.network.mobility import random_waypoint_delta_trace

#: 300 links per the acceptance criterion; the move threshold makes the
#: deltas sparse (a link re-announces its position only after drifting
#: 75 units), the regime the engine exists for.
N_LINKS = 300
N_STEPS = 80
MOVE_THRESHOLD = 75.0
SPEED_RANGE = (1.0, 5.0)
SEED = 2017
#: Best-of-N wall times; single runs on loaded CI boxes are too noisy
#: for a ratio assertion.
REPEATS = 3


def _run_incremental(trace) -> float:
    t0 = time.perf_counter()
    engine = IncrementalScheduler(trace.initial, scheduler="rle")
    schedules = [engine.schedule()]
    for delta in trace.deltas:
        schedules.append(engine.step(delta))
    wall = time.perf_counter() - t0
    # Feasibility against a fresh instance, on the final geometry.
    fresh = FadingRLS(links=engine.problem.links)
    assert fresh.is_feasible(schedules[-1].active)
    assert engine.stats["repairs"] + engine.stats["full_runs"] == len(schedules)
    return wall


def _run_scratch(trace) -> float:
    rle = get_scheduler("rle")
    t0 = time.perf_counter()
    for links in trace.linksets():
        problem = FadingRLS(links=links)
        rle(problem)
    return time.perf_counter() - t0


@pytest.mark.smoke
def test_incremental_speedup_vs_full_recompute():
    trace = random_waypoint_delta_trace(
        N_LINKS,
        N_STEPS,
        speed_range=SPEED_RANGE,
        move_threshold=MOVE_THRESHOLD,
        seed=SEED,
    )
    sizes = trace.delta_sizes()
    # The trace must actually be sparse, or the comparison is vacuous.
    assert 0 < float(np.mean(sizes)) < N_LINKS / 10

    inc_wall = min(_run_incremental(trace) for _ in range(REPEATS))
    scratch_wall = min(_run_scratch(trace) for _ in range(REPEATS))
    speedup = scratch_wall / inc_wall if inc_wall > 0 else float("inf")

    bench_export.record(
        "incremental_speedup",
        inc_wall,
        {
            "scratch_wall_seconds": scratch_wall,
            "speedup": speedup,
            "n_links": N_LINKS,
            "n_steps": N_STEPS,
            "move_threshold": MOVE_THRESHOLD,
            "mean_delta_size": float(np.mean(sizes)),
            "repeats": REPEATS,
            "scheduler": "rle",
        },
    )
    print(
        f"\nincremental: {inc_wall * 1000:.0f}ms, from-scratch: "
        f"{scratch_wall * 1000:.0f}ms, speedup {speedup:.1f}x "
        f"(mean delta {np.mean(sizes):.1f}/{N_LINKS} links)"
    )
    assert speedup >= 5.0, (
        f"expected the incremental engine to beat full recompute by >= 5x "
        f"on a sparse {N_LINKS}-link trace, got {speedup:.1f}x"
    )
