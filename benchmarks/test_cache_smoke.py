"""Schedule-cache benchmark: exact-hit serving vs uncached scheduling.

Replays a repeated-topology request stream — the serving-scale workload
shape from ROADMAP O5, where the same instances come back over and
over — through a warm :class:`~repro.cache.ScheduleCache` and through
the bare scheduler, asserting every cached answer is the stored
``Schedule`` object (exact tier, bit-identical by construction) and the
hit path is at least 5x faster per request, and records both wall
times (plus the speedup) to ``BENCH_RESULTS.json``.

Runs with the smoke marker so ``make bench-smoke`` / the CI deep run
leave a data point for ``tools/bench_gate.py`` to regress against.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import bench_export
from repro.cache import ScheduleCache
from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology

#: Distinct topologies in the pool x rounds through the pool.  Round 1
#: is all misses (it warms the cache); the timed stream replays the
#: pool HIT_ROUNDS more times, all exact hits.
N_TOPOLOGIES = 6
HIT_ROUNDS = 5
#: Large enough that rle's O(N^2) work dwarfs the O(N) exact-key hash.
N_LINKS = 120
SEED = 2017
SCHEDULER = "rle"
#: Best-of-N wall times; single runs on loaded CI boxes are too noisy
#: for a ratio assertion.
REPEATS = 3


def _problems():
    return [
        FadingRLS(links=paper_topology(N_LINKS, seed=SEED + i))
        for i in range(N_TOPOLOGIES)
    ]


def _run_cached(problems) -> float:
    cache = ScheduleCache(capacity=2 * N_TOPOLOGIES)
    warmed = [cache.schedule(p, SCHEDULER) for p in problems]  # all misses
    t0 = time.perf_counter()
    for _ in range(HIT_ROUNDS):
        for problem, reference in zip(problems, warmed):
            served = cache.schedule(problem, SCHEDULER)
            assert served is reference  # exact tier: the stored object back
    wall = time.perf_counter() - t0
    assert cache.stats["exact_hits"] == HIT_ROUNDS * N_TOPOLOGIES
    assert cache.stats["misses"] == N_TOPOLOGIES
    return wall


def _run_fresh(problems) -> float:
    scheduler = get_scheduler(SCHEDULER)
    t0 = time.perf_counter()
    for _ in range(HIT_ROUNDS):
        for problem in problems:
            scheduler(problem)
    return time.perf_counter() - t0


@pytest.mark.smoke
def test_cache_hit_path_speedup():
    problems = _problems()
    hit_wall = min(_run_cached(problems) for _ in range(REPEATS))
    fresh_wall = min(_run_fresh(problems) for _ in range(REPEATS))
    speedup = fresh_wall / hit_wall if hit_wall > 0 else float("inf")

    n_requests = HIT_ROUNDS * N_TOPOLOGIES
    bench_export.record(
        "cache_hit_speedup",
        hit_wall,
        {
            "fresh_wall_seconds": fresh_wall,
            "speedup": speedup,
            "n_topologies": N_TOPOLOGIES,
            "hit_rounds": HIT_ROUNDS,
            "n_links": N_LINKS,
            "repeats": REPEATS,
            "scheduler": SCHEDULER,
        },
    )
    print(
        f"\ncache hits: {hit_wall * 1000:.1f}ms, uncached: "
        f"{fresh_wall * 1000:.1f}ms for {n_requests} requests, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"expected the exact-hit path to beat uncached scheduling by >= 5x "
        f"over {n_requests} repeated {N_LINKS}-link requests, got {speedup:.1f}x"
    )
