"""Ablation A4: scheduler runtime scaling with instance size.

pytest-benchmark timings for every polynomial-time scheduler at N=600
(the O(N^2) interference matrix is pre-built so the numbers isolate the
algorithms themselves) plus the matrix build and the fading replay —
the two NumPy kernels everything sits on.
"""

from __future__ import annotations

import pytest

from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS, interference_factors
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_trials

N_LINKS = 600


@pytest.fixture(scope="module")
def big_problem():
    links = paper_topology(N_LINKS, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()  # pre-fill cache
    return problem


@pytest.mark.parametrize(
    "name", ["ldp", "rle", "greedy", "dls", "approx_logn", "approx_diversity"]
)
def test_scheduler_scaling(benchmark, big_problem, name):
    fn = get_scheduler(name)
    kwargs = {"seed": 0} if name == "dls" else {}
    schedule = benchmark(fn, big_problem, **kwargs)
    assert schedule.size >= 1


def test_interference_matrix_kernel(benchmark, big_problem):
    d = big_problem.distances()
    benchmark(interference_factors, d, 3.0, 1.0)


def test_fading_replay_kernel(benchmark, big_problem):
    import numpy as np

    active = np.arange(100)
    benchmark(simulate_trials, big_problem, active, 500, seed=1)
