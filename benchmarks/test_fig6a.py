"""Fig. 6(a): throughput vs number of links (LDP vs RLE).

Regenerates the panel's series and times the two fading-resistant
schedulers on a 300-link instance.
"""

from __future__ import annotations


from benchmarks.conftest import print_series
from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.fig6 import throughput_vs_links
from repro.network.topology import paper_topology


def test_fig6a_series_shape(benchmark, bench_config):
    """Regenerate the panel (timed as one benchmark round).  Paper
    shape: RLE >= LDP everywhere; throughput grows with N."""
    fig6a_series = benchmark.pedantic(
        throughput_vs_links, args=(bench_config,), rounds=1, iterations=1
    )
    print_series(fig6a_series, "mean_throughput", "Fig. 6(a): throughput vs #links")
    rle = fig6a_series.metric("rle", "mean_throughput")
    ldp = fig6a_series.metric("ldp", "mean_throughput")
    assert all(r >= l for r, l in zip(rle, ldp))
    assert rle[-1] >= rle[0]


def test_fig6a_ldp_benchmark(benchmark):
    links = paper_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()  # exclude one-time cache fill
    benchmark(ldp_schedule, problem)


def test_fig6a_rle_benchmark(benchmark):
    links = paper_topology(300, seed=0)
    problem = FadingRLS(links=links, alpha=3.0)
    problem.interference_matrix()
    benchmark(rle_schedule, problem)
