# Convenience targets; all assume the repo root as CWD.
# PYTHONPATH=src keeps the package importable without an install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench bench-smoke bench-traffic bench-channels bench-cache bench-kernels bench-service bench-gate chaos figures verify-fuzz coverage coverage-gate docs-check service-smoke ci-local

test: lint docs-check ## tier-1 test suite (cheap static gates first)
	$(PYTHON) -m pytest -x -q

lint:            ## ruff check + format check (skips with a warning when ruff is absent, unless CI)
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	elif [ -n "$$CI" ]; then \
		echo "lint: ruff is required in CI (pip install -e .[dev])"; exit 1; \
	else \
		echo "lint: ruff not installed, skipping (install with pip install -e .[dev])"; \
	fi

chaos:           ## fault-injection/resilience suite + recovery-overhead smoke bench
	$(PYTHON) -m pytest -q -m chaos
	$(PYTHON) -m pytest -q -m chaos benchmarks

docs-check:      ## span/metric catalogues complete + API.md snippets run
	$(PYTHON) tools/docs_check.py

bench:           ## full benchmark suite (writes BENCH_RESULTS.json)
	$(PYTHON) -m pytest benchmarks -q

bench-smoke:     ## small end-to-end benches + BENCH_RESULTS.json entries
	$(PYTHON) -m pytest benchmarks -q -m smoke

bench-traffic:   ## traffic-scenario smoke bench (workload stack + stability bisection)
	$(PYTHON) -m pytest benchmarks/test_traffic_smoke.py -q -s

bench-channels:  ## channel x power grid smoke bench (pluggable-law replay path)
	$(PYTHON) -m pytest benchmarks/test_channel_smoke.py -q -s

bench-cache:     ## schedule-cache smoke bench (exact-hit serving vs uncached)
	$(PYTHON) -m pytest benchmarks/test_cache_smoke.py -q -s

bench-kernels:   ## compute-kernel micro-benchmarks (feasibility/F-build/MC/submit path)
	$(PYTHON) -m pytest benchmarks/test_kernel_micro.py -q -s

bench-service:   ## serving smoke bench: 1000 concurrent clients vs a live server
	$(PYTHON) -m pytest benchmarks/test_service_smoke.py -q -s

service-smoke:   ## service tier: unit suites + a self-serving CLI load test
	$(PYTHON) -m pytest tests/test_service_broker.py tests/test_service_server.py tests/test_service_loadgen.py tests/test_verify_service.py -q
	$(PYTHON) -m repro loadtest --clients 200 --ticks 2 --seed 7 --min-ok 200 --min-peak 200 --max-transport-errors 0 >/dev/null

bench-gate:      ## bench-smoke + kernel benches against the committed baseline (fails on >50% regression)
	@cp BENCH_RESULTS.json /tmp/bench_baseline.json
	$(MAKE) bench-smoke
	$(MAKE) bench-kernels
	$(PYTHON) tools/bench_gate.py --baseline /tmp/bench_baseline.json --current BENCH_RESULTS.json

figures:         ## regenerate the paper panels (small config)
	$(PYTHON) -m repro figures

verify-fuzz:     ## differential + metamorphic oracle over fuzzed scenarios
	$(PYTHON) -m repro verify --budget 300 --seed 0 --time-budget 120

coverage:        ## tier-1 suite under coverage with a floor (needs pytest-cov; required in CI)
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q --cov=src/repro --cov-report=term-missing --cov-fail-under=85; \
	elif [ -n "$$CI" ]; then \
		echo "coverage: pytest-cov is required in CI (pip install -e .[dev])"; exit 1; \
	else \
		echo "pytest-cov not installed; running plain test suite instead"; \
		$(PYTHON) -m pytest -q; \
	fi

coverage-gate:   ## stdlib coverage ratchet vs tools/coverage_baseline.json (+ repro.cache 90% / repro.service 85% floors)
	$(PYTHON) tools/coverage_gate.py

ci-local:        ## everything the CI pipeline runs, locally
	$(MAKE) lint
	$(MAKE) docs-check
	$(PYTHON) -m pytest -x -q
	$(MAKE) service-smoke
	$(MAKE) verify-fuzz
	$(MAKE) bench-gate
