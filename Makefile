# Convenience targets; all assume the repo root as CWD.
# PYTHONPATH=src keeps the package importable without an install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke figures

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

bench:           ## full benchmark suite (writes BENCH_RESULTS.json)
	$(PYTHON) -m pytest benchmarks -q

bench-smoke:     ## one small figure end-to-end + BENCH_RESULTS.json entry
	$(PYTHON) -m pytest benchmarks -q -m smoke

figures:         ## regenerate the paper panels (small config)
	$(PYTHON) -m repro figures
