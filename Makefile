# Convenience targets; all assume the repo root as CWD.
# PYTHONPATH=src keeps the package importable without an install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke chaos figures verify-fuzz coverage docs-check

test: docs-check ## tier-1 test suite (docs contract first — it is cheap)
	$(PYTHON) -m pytest -x -q

chaos:           ## fault-injection/resilience suite + recovery-overhead smoke bench
	$(PYTHON) -m pytest -q -m chaos
	$(PYTHON) -m pytest -q -m chaos benchmarks

docs-check:      ## span/metric catalogues complete + API.md snippets run
	$(PYTHON) tools/docs_check.py

bench:           ## full benchmark suite (writes BENCH_RESULTS.json)
	$(PYTHON) -m pytest benchmarks -q

bench-smoke:     ## one small figure end-to-end + BENCH_RESULTS.json entry
	$(PYTHON) -m pytest benchmarks -q -m smoke

figures:         ## regenerate the paper panels (small config)
	$(PYTHON) -m repro figures

verify-fuzz:     ## differential + metamorphic oracle over fuzzed scenarios
	$(PYTHON) -m repro verify --budget 300 --seed 0 --time-budget 120

coverage:        ## tier-1 suite under coverage with a floor (needs pytest-cov)
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q --cov=src/repro --cov-report=term-missing --cov-fail-under=85; \
	else \
		echo "pytest-cov not installed; running plain test suite instead"; \
		$(PYTHON) -m pytest -q; \
	fi
